// Failpoint registry semantics: arm/disarm, trigger policies, the env
// spec grammar, and the ABC_FAILPOINT fast path. The end-to-end behavior
// of the woven points lives in tests/test_fault_matrix.cpp.

#include <gtest/gtest.h>

#include <algorithm>
#include <chrono>
#include <new>
#include <string>
#include <stdexcept>
#include <vector>

#include "common/check.hpp"
#include "common/failpoint.hpp"

namespace abc {
namespace {

constexpr const char* kPoint = "test.point";

/// Every test leaves the registry clean, so suites can run in any order.
struct FailpointTest : ::testing::Test {
  void TearDown() override { fail::disarm_all(); }
};

TEST_F(FailpointTest, UnarmedPointIsInvisible) {
  EXPECT_FALSE(fail::armed(kPoint));
  for (int i = 0; i < 100; ++i) ABC_FAILPOINT(kPoint);
  EXPECT_EQ(fail::hits(kPoint), 0u);
  EXPECT_EQ(fail::fires(kPoint), 0u);
}

TEST_F(FailpointTest, ArmedAlwaysThrowsEveryHit) {
  fail::arm(kPoint, fail::Policy{});
  EXPECT_TRUE(fail::armed(kPoint));
  EXPECT_THROW(ABC_FAILPOINT(kPoint), InvalidArgument);
  EXPECT_THROW(ABC_FAILPOINT(kPoint), InvalidArgument);
  EXPECT_EQ(fail::hits(kPoint), 2u);
  EXPECT_EQ(fail::fires(kPoint), 2u);
  fail::disarm(kPoint);
  EXPECT_FALSE(fail::armed(kPoint));
  ABC_FAILPOINT(kPoint);  // must be silent again
}

TEST_F(FailpointTest, ActionsMapToTheAdvertisedExceptionTypes) {
  fail::Policy policy;
  policy.action = fail::Action::kThrowLogicError;
  fail::arm(kPoint, policy);
  EXPECT_THROW(ABC_FAILPOINT(kPoint), LogicError);
  policy.action = fail::Action::kThrowRuntimeError;
  fail::arm(kPoint, policy);
  EXPECT_THROW(ABC_FAILPOINT(kPoint), std::runtime_error);
  policy.action = fail::Action::kThrowBadAlloc;
  fail::arm(kPoint, policy);
  EXPECT_THROW(ABC_FAILPOINT(kPoint), std::bad_alloc);
}

TEST_F(FailpointTest, InjectedMessageNamesThePoint) {
  fail::arm(kPoint, fail::Policy{});
  try {
    ABC_FAILPOINT(kPoint);
    FAIL() << "failpoint did not fire";
  } catch (const InvalidArgument& e) {
    EXPECT_NE(std::string(e.what()).find(kPoint), std::string::npos);
  }
}

TEST_F(FailpointTest, NthHitFiresExactlyOnce) {
  fail::Policy policy;
  policy.trigger = fail::Trigger::kNthHit;
  policy.nth = 3;
  fail::arm(kPoint, policy);
  ABC_FAILPOINT(kPoint);
  ABC_FAILPOINT(kPoint);
  EXPECT_EQ(fail::fires(kPoint), 0u);
  EXPECT_THROW(ABC_FAILPOINT(kPoint), InvalidArgument);
  ABC_FAILPOINT(kPoint);  // hit 4: past the nth, silent again
  EXPECT_EQ(fail::hits(kPoint), 4u);
  EXPECT_EQ(fail::fires(kPoint), 1u);
}

TEST_F(FailpointTest, ProbabilityReplaysDeterministicallyForASeed) {
  const auto pattern = [&](u64 seed) {
    fail::Policy policy;
    policy.trigger = fail::Trigger::kProbability;
    policy.probability = 0.5;
    policy.seed = seed;
    fail::arm(kPoint, policy);
    std::vector<bool> fired;
    for (int i = 0; i < 64; ++i) {
      try {
        ABC_FAILPOINT(kPoint);
        fired.push_back(false);
      } catch (const InvalidArgument&) {
        fired.push_back(true);
      }
    }
    return fired;
  };
  const std::vector<bool> a = pattern(7);
  const std::vector<bool> b = pattern(7);
  EXPECT_EQ(a, b) << "same seed must replay the same fault pattern";
  EXPECT_NE(a, pattern(8)) << "different seeds should diverge";
  // p=0.5 over 64 draws: both outcomes must appear (P[miss] ~ 2^-64).
  EXPECT_NE(std::count(a.begin(), a.end(), true), 0);
  EXPECT_NE(std::count(a.begin(), a.end(), true), 64);
}

TEST_F(FailpointTest, ProbabilityZeroNeverFiresOneAlwaysDoes) {
  fail::Policy policy;
  policy.trigger = fail::Trigger::kProbability;
  policy.probability = 0.0;
  fail::arm(kPoint, policy);
  for (int i = 0; i < 50; ++i) ABC_FAILPOINT(kPoint);
  EXPECT_EQ(fail::fires(kPoint), 0u);
  policy.probability = 1.0;
  fail::arm(kPoint, policy);
  EXPECT_THROW(ABC_FAILPOINT(kPoint), InvalidArgument);
}

TEST_F(FailpointTest, MaxFiresExhaustsButStaysRegistered) {
  fail::Policy policy;
  policy.max_fires = 2;
  fail::arm(kPoint, policy);
  EXPECT_THROW(ABC_FAILPOINT(kPoint), InvalidArgument);
  EXPECT_THROW(ABC_FAILPOINT(kPoint), InvalidArgument);
  ABC_FAILPOINT(kPoint);  // exhausted: passes through
  ABC_FAILPOINT(kPoint);
  EXPECT_TRUE(fail::armed(kPoint));
  EXPECT_EQ(fail::hits(kPoint), 4u);
  EXPECT_EQ(fail::fires(kPoint), 2u);
  // Re-arming resets the counters and the exhaustion.
  fail::arm(kPoint, policy);
  EXPECT_THROW(ABC_FAILPOINT(kPoint), InvalidArgument);
  EXPECT_EQ(fail::fires(kPoint), 1u);
}

TEST_F(FailpointTest, DelayActionSleepsThenContinues) {
  fail::Policy policy;
  policy.action = fail::Action::kDelay;
  policy.delay_us = 2000;
  fail::arm(kPoint, policy);
  const auto t0 = std::chrono::steady_clock::now();
  ABC_FAILPOINT(kPoint);  // must not throw
  const auto elapsed = std::chrono::steady_clock::now() - t0;
  EXPECT_GE(std::chrono::duration_cast<std::chrono::microseconds>(elapsed)
                .count(),
            2000);
  EXPECT_EQ(fail::fires(kPoint), 1u);
}

TEST_F(FailpointTest, ScopedFailpointDisarmsOnExit) {
  {
    fail::ScopedFailpoint guard(kPoint, fail::Policy{});
    EXPECT_TRUE(fail::armed(kPoint));
  }
  EXPECT_FALSE(fail::armed(kPoint));
}

TEST_F(FailpointTest, InstallSpecArmsEveryEntry) {
  fail::install_spec(
      "serialize.ct=throw@hit:2;backend.worker_job=delay:200@prob:0.25/7,"
      "limit:4;engine.encrypt_item=badalloc");
  EXPECT_TRUE(fail::armed(fail::points::kDeserializeCiphertext));
  EXPECT_TRUE(fail::armed(fail::points::kBackendWorkerJob));
  EXPECT_TRUE(fail::armed(fail::points::kEncryptItem));
  // hit:2 semantics survive the round trip through the grammar.
  ABC_FAILPOINT(fail::points::kDeserializeCiphertext);
  EXPECT_THROW(ABC_FAILPOINT(fail::points::kDeserializeCiphertext),
               InvalidArgument);
}

TEST_F(FailpointTest, InstallSpecToleratesSeparatorSlack) {
  fail::install_spec(";test.point=throw;;");
  EXPECT_TRUE(fail::armed(kPoint));
}

TEST_F(FailpointTest, MalformedSpecsThrowInvalidArgument) {
  const char* bad[] = {
      "noequals",                 // not name=action
      "=throw",                   // empty name
      "a=bogus",                  // unknown action
      "a=delay:xyz",              // non-integer delay
      "a=throw@hit:0",            // hit is 1-based
      "a=throw@prob:2.0",         // probability out of range
      "a=throw@prob:0.5/abc",     // non-integer seed
      "a=throw@limit:0",          // limit at least 1
      "a=throw@frequency:3",      // unknown modifier
  };
  for (const char* spec : bad) {
    EXPECT_THROW(fail::install_spec(spec), InvalidArgument) << spec;
    EXPECT_FALSE(fail::armed("a"));
  }
}

TEST_F(FailpointTest, DisarmAllClearsEveryPoint) {
  fail::arm("test.a", fail::Policy{});
  fail::arm("test.b", fail::Policy{});
  fail::disarm_all();
  EXPECT_FALSE(fail::armed("test.a"));
  EXPECT_FALSE(fail::armed("test.b"));
  ABC_FAILPOINT("test.a");
  EXPECT_EQ(fail::hits("test.a"), 0u);
}

TEST_F(FailpointTest, CatalogNamesAreUniqueAndNonEmpty) {
  std::vector<std::string> names(std::begin(fail::points::kAll),
                                 std::end(fail::points::kAll));
  for (const std::string& n : names) EXPECT_FALSE(n.empty());
  std::sort(names.begin(), names.end());
  EXPECT_EQ(std::unique(names.begin(), names.end()), names.end())
      << "duplicate catalog entry";
}

}  // namespace
}  // namespace abc
