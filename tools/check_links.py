#!/usr/bin/env python3
"""Checks that relative markdown links in the repo's docs resolve.

Scans the top-level *.md files and docs/**/*.md for inline links
[text](target) and validates that every relative target exists on disk
(anchors are stripped; http(s)/mailto targets are skipped so the check
stays hermetic). Exits non-zero listing every broken link.

Usage: python3 tools/check_links.py [file.md ...]
       (no arguments: scan the default doc set)
"""

import pathlib
import re
import sys

ROOT = pathlib.Path(__file__).resolve().parent.parent
# Inline markdown links/images; the target stops at whitespace or ')'.
LINK_RE = re.compile(r"!?\[[^\]]*\]\(([^)\s]+)(?:\s+\"[^\"]*\")?\)")
SKIP_PREFIXES = ("http://", "https://", "mailto:")


def doc_set(argv):
    if argv:
        return [pathlib.Path(a) for a in argv]
    docs = sorted(ROOT.glob("*.md")) + sorted(ROOT.glob("docs/**/*.md"))
    return docs


def check_file(path):
    broken = []
    text = path.read_text(encoding="utf-8")
    in_code_fence = False
    for lineno, line in enumerate(text.splitlines(), start=1):
        if line.lstrip().startswith("```"):
            in_code_fence = not in_code_fence
            continue
        if in_code_fence:
            continue
        for match in LINK_RE.finditer(line):
            target = match.group(1)
            if target.startswith(SKIP_PREFIXES) or target.startswith("#"):
                continue
            rel = target.split("#", 1)[0]
            if not rel:
                continue
            resolved = (path.parent / rel).resolve()
            if not resolved.exists():
                broken.append((lineno, target))
    return broken


def main(argv):
    failures = 0
    files = doc_set(argv)
    for path in files:
        if not path.exists():
            print(f"error: no such file: {path}", file=sys.stderr)
            failures += 1
            continue
        for lineno, target in check_file(path):
            rel_path = path.relative_to(ROOT) if path.is_relative_to(ROOT) else path
            print(f"{rel_path}:{lineno}: broken link -> {target}",
                  file=sys.stderr)
            failures += 1
    print(f"checked {len(files)} markdown file(s), {failures} broken link(s)")
    return 1 if failures else 0


if __name__ == "__main__":
    sys.exit(main(sys.argv[1:]))
