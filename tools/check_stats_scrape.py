#!/usr/bin/env python3
"""Validates an Op::kStats scrape written by `serve_clients --stats-json`.

The scrape is the operator-facing contract of the obs subsystem, so CI
fails the build when it regresses:

 * the payload must parse as JSON with the expected top-level shape
   (metrics_enabled, counters, gauges, histograms, histogram_layout,
   traces);
 * every name in the metric catalog (src/obs/metrics.hpp) must be
   present in its section — a subsystem that silently stops exporting
   fails here, not in a dashboard weeks later;
 * the histogram layout must match the compiled-in log2 boundaries;
 * in a metrics-enabled build, the admission/latency path must have
   left real data: server.accepted > 0 and populated queue-wait and
   end-to-end histograms whose bucket sums equal their counts.

Usage: python3 tools/check_stats_scrape.py STATS_server.json
"""

import json
import sys

# Mirror of obs::catalog::kAll — keep in sync with src/obs/metrics.hpp.
COUNTERS = [
    "server.accepted",
    "server.rejected_too_large",
    "server.rejected_queue_full",
    "server.rejected_shutting_down",
    "server.processed",
    "server.steals",
    "server.drained",
    "server.slow_requests",
    "session.context_cache_hits",
    "session.context_cache_misses",
    "engine.items_processed",
    "engine.items_failed",
    "keyswitch.decompositions",
    "keyswitch.accumulations",
    "keyswitch.hoist_reuses",
    "transport.bytes_in",
    "transport.bytes_out",
    "transport.frame_errors",
    "keycache.hits",
    "keycache.misses",
    "keycache.evictions",
    "failpoint.hits",
    "failpoint.fires",
]
GAUGES = [
    "server.queue_depth",
    "session.resident_tenants",
    "keycache.resident_bytes",
]
HISTOGRAMS = [
    "server.queue_wait_ns",
    "server.request_ns",
    "engine.item_ns",
    "keycache.regen_ns",
]

HIST_BUCKETS = 48


def fail(msg):
    print(f"check_stats_scrape: FAIL: {msg}", file=sys.stderr)
    sys.exit(1)


def main(argv):
    if len(argv) != 2:
        fail("usage: check_stats_scrape.py <stats.json>")
    try:
        with open(argv[1], encoding="utf-8") as f:
            doc = json.load(f)
    except (OSError, json.JSONDecodeError) as e:
        fail(f"cannot parse {argv[1]}: {e}")

    for section in ("counters", "gauges", "histograms", "histogram_layout",
                    "traces"):
        if section not in doc:
            fail(f"missing top-level section {section!r}")
    if not isinstance(doc.get("metrics_enabled"), bool):
        fail("metrics_enabled missing or not a bool")

    layout = doc["histogram_layout"]
    if layout.get("buckets") != HIST_BUCKETS:
        fail(f"histogram_layout.buckets = {layout.get('buckets')}, "
             f"expected {HIST_BUCKETS}")
    lowers = layout.get("lower_bounds")
    expected = [0] + [1 << i for i in range(HIST_BUCKETS - 1)]
    if lowers != expected:
        fail("histogram_layout.lower_bounds do not match the log2 layout")

    traces = doc["traces"]
    for key in ("slow_threshold_ns", "slow_count", "recent", "slow"):
        if key not in traces:
            fail(f"traces.{key} missing")

    if not doc["metrics_enabled"]:
        # ABC_NO_METRICS scrape: sections legitimately empty; the shape
        # checks above are the whole contract.
        print("check_stats_scrape: OK (metrics compiled out; shape valid)")
        return

    for name in COUNTERS:
        if name not in doc["counters"]:
            fail(f"catalog counter {name!r} missing from scrape")
    for name in GAUGES:
        if name not in doc["gauges"]:
            fail(f"catalog gauge {name!r} missing from scrape")
    for name in HISTOGRAMS:
        hist = doc["histograms"].get(name)
        if hist is None:
            fail(f"catalog histogram {name!r} missing from scrape")
        for key in ("count", "sum", "p50", "p95", "p99", "buckets"):
            if key not in hist:
                fail(f"histogram {name!r} missing field {key!r}")
        if len(hist["buckets"]) != HIST_BUCKETS:
            fail(f"histogram {name!r} has {len(hist['buckets'])} buckets")
        if sum(hist["buckets"]) != hist["count"]:
            fail(f"histogram {name!r} bucket sum != count")

    # The serve_clients run drove real traffic: admission accepted it and
    # both serving-latency histograms saw every request.
    accepted = doc["counters"]["server.accepted"]
    if accepted <= 0:
        fail("server.accepted is 0 after a client run")
    for name in ("server.queue_wait_ns", "server.request_ns"):
        count = doc["histograms"][name]["count"]
        if count <= 0:
            fail(f"histogram {name!r} empty after a client run")
    if not traces["recent"]:
        fail("traces.recent empty after a client run")

    print(f"check_stats_scrape: OK ({accepted} accepted, "
          f"{doc['counters']['server.processed']} processed, "
          f"{len(traces['recent'])} traces)")


if __name__ == "__main__":
    main(sys.argv)
