// Client keygen session: the paper's full client-side scenario end to end.
// A device holding only the 128-bit seed (1) generates its secret/public
// keys plus the switching-key material a server needs for bootstrappable
// parameters (relinearization + Galois keys), (2) serializes the keys
// seed-compressed — only the b halves and PRNG stream ids ship, (3)
// batch-encrypts a round of telemetry, and (4) serializes the ciphertexts
// for upload. Everything fans out across the thread-pool backend and is
// bit-identical to a single-threaded run.
//
// Build & run:
//   cmake -B build && cmake --build build -j
//   ./build/client_keygen

#include <chrono>
#include <cstdio>
#include <random>
#include <vector>

#include "backend/thread_pool_backend.hpp"
#include "ckks/decryptor.hpp"
#include "ckks/serialize.hpp"
#include "engine/batch_encryptor.hpp"
#include "engine/batch_keygen.hpp"

int main() {
  using namespace abc;
  using Clock = std::chrono::steady_clock;
  auto ms_since = [](Clock::time_point t0) {
    return std::chrono::duration<double, std::milli>(Clock::now() - t0)
        .count();
  };

  std::puts("== ABC-FHE client keygen session ==\n");

  // Moderate parameters keep the demo snappy; swap in
  // CkksParams::bootstrappable() for the paper's N = 2^16 / 24-limb set.
  ckks::CkksParams params = ckks::CkksParams::sweep_point(12, 6);
  params.validate();
  auto pool = std::make_shared<backend::ThreadPoolBackend>();
  auto ctx = ckks::CkksContext::create(params, pool);
  std::printf("Parameters: N = 2^%d, %zu limbs; backend '%s' with %zu "
              "workers\n\n",
              params.log_n, params.num_limbs, ctx->backend().name(),
              ctx->backend().workers());

  // 1. On-device key generation: secret + public serially, switching keys
  //    fanned across the pool by the batch engine.
  const std::vector<int> rotations = {1, 2, 4, 8};
  auto t0 = Clock::now();
  ckks::KeyGenerator keygen(ctx);
  const ckks::SecretKey sk = keygen.secret_key();
  const ckks::PublicKey pk = keygen.public_key(sk);
  engine::BatchKeyGenerator key_engine(ctx, sk);
  const ckks::RelinKey rlk = key_engine.relin_key();
  const ckks::GaloisKeys gks = key_engine.galois_keys(rotations);
  std::printf("Generated sk, pk, relin (%zu digits) and %zu Galois keys "
              "in %.1f ms\n",
              rlk.key.digits(), gks.keys.size(), ms_since(t0));

  // 2. Serialize the key set seed-compressed: the server receives only b
  //    halves + stream ids and regenerates every uniform half itself.
  t0 = Clock::now();
  std::size_t compressed = 0, full = 0;
  std::vector<std::vector<u8>> key_blobs;
  key_blobs.push_back(serialize_public_key(ctx, pk));
  key_blobs.push_back(serialize_key_switch_key(ctx, rlk.key));
  for (const auto& gk : gks.keys) {
    key_blobs.push_back(serialize_key_switch_key(ctx, gk));
  }
  for (const auto& blob : key_blobs) compressed += blob.size();
  full += public_key_sizes(pk).full_bytes;
  full += key_switch_key_sizes(rlk.key).full_bytes;
  for (const auto& gk : gks.keys) full += key_switch_key_sizes(gk).full_bytes;
  std::printf("Key upload: %.2f MB seed-compressed vs %.2f MB full "
              "(%.2fx saved) in %.1f ms\n",
              static_cast<double>(compressed) / 1e6,
              static_cast<double>(full) / 1e6,
              static_cast<double>(full) / static_cast<double>(compressed),
              ms_since(t0));

  // Sanity: the compressed relin key round-trips bit-exactly.
  const ckks::KeySwitchKey rlk_restored =
      deserialize_key_switch_key(ctx, key_blobs[1]);
  for (std::size_t d = 0; d < rlk.key.digits(); ++d) {
    for (std::size_t l = 0; l < rlk.key.b[d].limbs(); ++l) {
      const auto want_b = rlk.key.b[d].limb(l);
      const auto got_b = rlk_restored.b[d].limb(l);
      const auto want_a = rlk.key.a[d].limb(l);
      const auto got_a = rlk_restored.a[d].limb(l);
      for (std::size_t j = 0; j < want_b.size(); ++j) {
        if (want_b[j] != got_b[j] || want_a[j] != got_a[j]) {
          std::puts("KEY ROUND-TRIP MISMATCH — investigate!");
          return 1;
        }
      }
    }
  }
  std::puts("Relin key round-trips bit-exactly through compression.\n");

  // 3. Batch-encrypt a round of telemetry (symmetric seeded: one NTT pass
  //    per limb, c1 seed-compressed).
  const std::size_t batch = 16;
  std::mt19937_64 rng(2718);
  std::uniform_real_distribution<double> dist(-1.0, 1.0);
  std::vector<std::vector<double>> readings(batch);
  for (auto& r : readings) {
    r.resize(ctx->slots());
    for (double& x : r) x = dist(rng);
  }
  t0 = Clock::now();
  engine::BatchEncryptor enc_engine(ctx, sk);
  const auto cts = enc_engine.encrypt_real_batch(readings, params.num_limbs);
  std::printf("Encrypted %zu messages in %.1f ms\n", batch, ms_since(t0));

  // 4. Serialize the ciphertexts for upload.
  t0 = Clock::now();
  std::size_t ct_bytes = 0;
  for (const auto& ct : cts) ct_bytes += serialize_ciphertext(ct).size();
  std::printf("Ciphertext upload: %.2f MB (%.1f ms; c1 compressed to its "
              "stream id)\n\n",
              static_cast<double>(ct_bytes) / 1e6, ms_since(t0));

  // Spot-check the round trip before declaring the session healthy.
  ckks::Decryptor dec(ctx, sk);
  ckks::CkksEncoder encoder(ctx);
  double worst_bits = 1e300;
  for (std::size_t i : {std::size_t{0}, batch - 1}) {
    const auto decoded = encoder.decode(dec.decrypt(cts[i]));
    std::vector<std::complex<double>> want(readings[i].size());
    for (std::size_t j = 0; j < want.size(); ++j) {
      want[j] = {readings[i][j], 0.0};
    }
    worst_bits =
        std::min(worst_bits, ckks::compare_slots(want, decoded).precision_bits);
  }
  std::printf("Worst spot-check precision: %.1f bits\n", worst_bits);
  std::printf("%s\n", worst_bits > 10.0 ? "Client session OK."
                                        : "PRECISION LOSS — investigate!");
  return worst_bits > 10.0 ? 0 : 1;
}
