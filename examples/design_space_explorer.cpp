// Explores the accelerator design space: sweeps lanes, PNL count and
// operand placement, and prints a latency / area Pareto table — the kind
// of study behind the paper's choice of 2 RSC x 4 PNL x P=8 under LPDDR5.
//
// Run: ./build/examples/design_space_explorer

#include <cstdio>

#include "common/table.hpp"
#include "core/area_model.hpp"
#include "core/simulator.hpp"

int main() {
  using namespace abc;
  std::puts("== ABC-FHE design-space explorer ==\n");
  std::puts("Sweeping lanes x PNLs at N = 2^16, 24-limb public-key encrypt;");
  std::puts("area from the Table I-calibrated 28nm model.\n");

  const core::TechConstants tc = core::calibrate_28nm();

  TextTable table("Latency vs area Pareto sweep");
  table.set_header({"PNLs/RSC", "Lanes (P)", "Enc+enc (ms)", "Throughput (ct/s)",
                    "Chip area (mm^2)", "Power (W)", "ms x mm^2"});

  double best_product = 1e30;
  int best_pnl = 0, best_lanes = 0;
  for (int pnl : {2, 4, 8}) {
    for (int lanes : {4, 8, 16}) {
      core::ArchConfig cfg = core::ArchConfig::paper_default();
      cfg.pnl_per_rsc = pnl;
      cfg.lanes = lanes;
      cfg.mse_width = pnl * lanes;
      cfg.enc_profile = core::EncryptProfile::public_key();
      core::AbcFheSimulator sim(cfg);
      const double ms = sim.encode_encrypt_ms();
      const double tput = sim.encode_encrypt_throughput();
      const core::AreaPowerBreakdown bd = core::abc_fhe_breakdown(cfg, tc);
      const double product = ms * bd.total_area_mm2();
      if (product < best_product) {
        best_product = product;
        best_pnl = pnl;
        best_lanes = lanes;
      }
      table.add_row({std::to_string(pnl), std::to_string(lanes),
                     TextTable::fmt(ms, 3), TextTable::fmt(tput, 0),
                     TextTable::fmt(bd.total_area_mm2(), 2),
                     TextTable::fmt(bd.total_power_w(), 2),
                     TextTable::fmt(product, 2)});
    }
  }
  table.print();
  std::printf(
      "\nBest latency-area product: %d PNLs x %d lanes (paper selects "
      "4 x 8 under the same LPDDR5 constraint).\n",
      best_pnl, best_lanes);

  // Operand placement ablation at the chosen point.
  TextTable placement("Operand placement at 4 PNL x P=8");
  placement.set_header({"Twiddles", "Randomness", "Enc+enc (ms)"});
  for (auto [tf, prng, label_tf, label_prng] :
       {std::tuple{false, false, "DRAM", "DRAM"},
        std::tuple{true, false, "on-chip", "DRAM"},
        std::tuple{true, true, "on-chip", "on-chip"}}) {
    core::ArchConfig cfg = core::ArchConfig::paper_default();
    cfg.enc_profile = core::EncryptProfile::public_key();
    cfg.placement.twiddles_on_chip = tf;
    cfg.placement.randomness_on_chip = prng;
    placement.add_row({label_tf, label_prng,
                       TextTable::fmt(core::AbcFheSimulator(cfg)
                                          .encode_encrypt_ms(),
                                      3)});
  }
  std::puts("");
  placement.print();
  return 0;
}
