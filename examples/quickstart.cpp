// Quickstart: the full CKKS client round trip at bootstrappable
// parameters — encode, encrypt, decrypt, decode — plus what the ABC-FHE
// accelerator would take for the same jobs.
//
// Build & run:
//   cmake -B build -G Ninja && cmake --build build
//   ./build/examples/quickstart

#include <complex>
#include <cstdio>
#include <vector>

#include "baseline/cpu_reference.hpp"
#include "ckks/decryptor.hpp"
#include "ckks/encoder.hpp"
#include "ckks/encryptor.hpp"
#include "core/simulator.hpp"

int main() {
  using namespace abc;
  std::puts("== ABC-FHE quickstart ==\n");

  // 1. Parameters: N = 2^14 keeps this demo snappy; swap in
  //    CkksParams::bootstrappable() for the paper's full N = 2^16 set.
  ckks::CkksParams params = ckks::CkksParams::sweep_point(14, 8);
  params.validate();
  auto ctx = ckks::CkksContext::create(params);
  std::printf("Parameters: N = 2^%d, %zu limbs of %d bits, scale 2^%d\n",
              params.log_n, params.num_limbs, params.prime_bits,
              params.scale_bits);

  // 2. Keys (all randomness derives from the 128-bit context seed).
  ckks::KeyGenerator keygen(ctx);
  const ckks::SecretKey sk = keygen.secret_key();
  ckks::Encryptor encryptor(ctx, keygen.public_key(sk));
  ckks::Decryptor decryptor(ctx, sk);
  ckks::CkksEncoder encoder(ctx);

  // 3. A message: N/2 complex slots.
  std::vector<std::complex<double>> message(encoder.slots());
  for (std::size_t i = 0; i < message.size(); ++i) {
    message[i] = {std::sin(0.001 * static_cast<double>(i)),
                  std::cos(0.003 * static_cast<double>(i))};
  }

  // 4. Encode -> encrypt -> decrypt -> decode.
  const ckks::Plaintext pt = encoder.encode(message, params.num_limbs);
  const ckks::Ciphertext ct = encryptor.encrypt(pt);
  const ckks::Plaintext decrypted = decryptor.decrypt(ct);
  const auto decoded = encoder.decode(decrypted);

  const ckks::PrecisionReport report = ckks::compare_slots(message, decoded);
  std::printf("\nRound trip over %zu slots: max error %.3g (%.1f bits of "
              "precision)\n",
              message.size(), report.max_abs_error, report.precision_bits);

  // 5. What would ABC-FHE take for this?
  core::ArchConfig cfg = core::ArchConfig::paper_default();
  cfg.log_n = params.log_n;
  cfg.fresh_limbs = params.num_limbs;
  cfg.enc_profile = core::EncryptProfile::public_key();
  core::AbcFheSimulator sim(cfg);
  std::printf("\nABC-FHE accelerator (600 MHz, LPDDR5): encode+encrypt "
              "%.3f ms, decode+decrypt %.3f ms\n",
              sim.encode_encrypt_ms(), sim.decode_decrypt_ms());
  std::puts("\nDone.");
  return 0;
}
