// Serving daemon demo: one engine::Server, four concurrent ClientSession
// tenants. Each client registers its own key bundle over the loopback
// transport, then drives the PR 5 retrying round-trip facade against the
// daemon — uploads fan across the per-core run queues (with work
// stealing), responses come back as "ABCB" download envelopes, and every
// slot is verified against the sent messages. A rotate request per client
// checks the compute path too.
//
// After the clients finish, the demo scrapes the daemon's metrics the way
// an operator would: an Op::kStats admin request over a Unix-domain
// socket, answered with the JSON document every instrumented subsystem
// feeds (counters, gauges, latency histograms, recent traces).
//
// Exits nonzero if any client's round trip fails to verify — the same
// check CI's example smoke gates on.
//
// Build & run:
//   cmake -B build && cmake --build build -j
//   ./build/serve_clients [--stats-json <path>] [--key-cache-mb <n>]
//
// --stats-json writes the scraped kStats payload to <path> (CI validates
// it with tools/check_stats_scrape.py). --key-cache-mb sizes the daemon's
// shared expanded-key cache (default from ServerConfig; small values
// demonstrate regeneration churn in the keycache.* metrics).

#include <unistd.h>

#include <chrono>
#include <complex>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <mutex>
#include <random>
#include <string>
#include <thread>
#include <vector>

#include "engine/client_session.hpp"
#include "server/server.hpp"
#include "server/transport.hpp"

int main(int argc, char** argv) {
  using namespace abc;
  std::string stats_json_path;
  std::size_t key_cache_mb = 0;  // 0 = ServerConfig default
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--stats-json") == 0 && i + 1 < argc) {
      stats_json_path = argv[++i];
    } else if (std::strcmp(argv[i], "--key-cache-mb") == 0 && i + 1 < argc) {
      key_cache_mb = static_cast<std::size_t>(std::atol(argv[++i]));
    }
  }
  using Clock = std::chrono::steady_clock;
  const auto t0 = Clock::now();

  std::puts("== ABC-FHE serving daemon (4 concurrent tenants) ==\n");

  // The daemon publishes one parameter set and schedules across per-core
  // workers; clients never share state with it except through frames.
  const ckks::CkksParams params = ckks::CkksParams::test_small(11, 3);
  server::ServerConfig cfg;
  cfg.workers = 2;
  cfg.param_sets = {params};
  if (key_cache_mb > 0) cfg.key_cache_bytes = key_cache_mb << 20;
  server::Server daemon(cfg);
  std::printf("daemon up: %zu workers, queue capacity %zu, N = 2^%d\n\n",
              daemon.config().workers, daemon.config().queue_capacity,
              params.log_n);

  constexpr int kClients = 4;
  std::mutex log_m;
  std::vector<std::string> failures;
  std::vector<std::thread> clients;
  for (int c = 0; c < kClients; ++c) {
    clients.emplace_back([&, c] {
      auto fail = [&](const std::string& why) {
        std::lock_guard<std::mutex> lock(log_m);
        failures.push_back("client " + std::to_string(c) + ": " + why);
      };
      try {
        // Each tenant: own context, own keys, own connection.
        auto ctx = ckks::CkksContext::create(params);
        engine::ClientSession session(ctx, engine::SessionConfig{{1}});
        server::LoopbackChannel chan(daemon);
        const u64 tenant = server::register_over_channel(
            chan, 0, session.key_bundle());

        // Random batch, verified echo round trip with bounded retry.
        std::mt19937_64 rng(static_cast<u64>(c) + 1);
        std::uniform_real_distribution<double> dist(-1.0, 1.0);
        std::vector<std::vector<std::complex<double>>> msgs(3);
        for (auto& m : msgs) {
          m.resize(ctx->slots());
          for (auto& z : m) z = {dist(rng), dist(rng)};
        }
        const std::size_t limbs = ctx->max_limbs() - 1;
        const auto echo = session.round_trip_with_retry(
            msgs, limbs,
            server::as_session_transport(chan, tenant, server::Op::kEcho));
        if (!echo.ok) {
          fail("echo round trip failed to verify");
          return;
        }

        // One rotate request: decrypt and spot-check the slots moved.
        const auto resp = chan.call([&] {
          ckks::RequestFrame req;
          req.tenant = tenant;
          req.request_id = 1;
          req.op = static_cast<u8>(server::Op::kRotate);
          req.op_arg = 1;
          req.payload = session.upload(msgs, limbs);
          return req;
        }());
        if (resp.status != static_cast<u8>(server::Status::kOk)) {
          fail("rotate request answered " +
               std::string(server::status_name(
                   static_cast<server::Status>(resp.status))) +
               ": " + resp.error);
          return;
        }
        const auto rotated =
            ckks::deserialize_ciphertext_batch(ctx, resp.payload);
        const auto decoded = session.decrypt_batch(rotated);
        const std::size_t slots = ctx->slots();
        for (std::size_t i = 0; i < msgs.size(); ++i) {
          for (std::size_t j = 0; j < slots; ++j) {
            if (std::abs(decoded[i][j] - msgs[i][(j + 1) % slots]) > 1e-2) {
              fail("rotate slot mismatch at batch " + std::to_string(i) +
                   " slot " + std::to_string(j));
              return;
            }
          }
        }
        {
          std::lock_guard<std::mutex> lock(log_m);
          std::printf("client %d: tenant %llu verified echo + rotate "
                      "(%zu retries used)\n",
                      c, static_cast<unsigned long long>(tenant),
                      echo.rounds - 1);
        }
      } catch (const std::exception& e) {
        fail(e.what());
      }
    });
  }
  for (auto& t : clients) t.join();

  const server::ServerStats stats = daemon.stats();
  std::printf("\ndaemon: %llu accepted, %llu processed, %llu stolen "
              "across %zu workers\n",
              static_cast<unsigned long long>(stats.accepted),
              static_cast<unsigned long long>(stats.processed),
              static_cast<unsigned long long>(stats.steals),
              stats.per_worker_processed.size());
  // Operator-style observability: scrape Op::kStats over a Unix-domain
  // socket — the exact path a monitoring agent would use against a
  // deployed daemon — and show a few headline numbers.
  try {
    const std::string sock_path =
        "/tmp/abc_serve_clients_" + std::to_string(::getpid()) + ".sock";
    server::UdsServer uds(daemon, sock_path);
    server::UdsChannel chan(sock_path);
    ckks::RequestFrame req;
    req.request_id = 1;
    req.op = static_cast<u8>(server::Op::kStats);
    const ckks::ResponseFrame resp = chan.call(req);
    if (resp.status != static_cast<u8>(server::Status::kOk)) {
      std::fprintf(stderr, "kStats scrape answered %s: %s\n",
                   server::status_name(
                       static_cast<server::Status>(resp.status)),
                   resp.error.c_str());
      return 1;
    }
    const std::string json(resp.payload.begin(), resp.payload.end());
    std::printf("kStats scrape over UDS: %zu bytes of JSON\n", json.size());
    if (!stats_json_path.empty()) {
      std::FILE* f = std::fopen(stats_json_path.c_str(), "w");
      if (f == nullptr) {
        std::fprintf(stderr, "cannot write %s\n", stats_json_path.c_str());
        return 1;
      }
      std::fwrite(json.data(), 1, json.size(), f);
      std::fclose(f);
      std::printf("stats written to %s\n", stats_json_path.c_str());
    }
  } catch (const std::exception& e) {
    std::fprintf(stderr, "kStats scrape failed: %s\n", e.what());
    return 1;
  }

  const double secs =
      std::chrono::duration<double>(Clock::now() - t0).count();
  if (!failures.empty()) {
    for (const auto& f : failures) std::fprintf(stderr, "FAIL %s\n", f.c_str());
    return 1;
  }
  std::printf("all %d clients verified in %.2f s\n", kClients, secs);
  return 0;
}
