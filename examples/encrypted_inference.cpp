// Encrypted inference round trip — the workload motivating the paper's
// Fig. 1. The client encodes and encrypts a feature vector; the "server"
// evaluates a small dense layer with a polynomial activation entirely on
// ciphertexts (plaintext weights, homomorphic add/mult/rescale); the
// client decrypts and decodes the logits and checks them against the
// cleartext computation.
//
//   client: encode + encrypt            (what ABC-FHE accelerates)
//   server: w*x + b, then y = 0.5*y^2   (CKKS-friendly activation)
//   client: decrypt + decode
//
// Run: ./build/examples/encrypted_inference

#include <cmath>
#include <complex>
#include <cstdio>
#include <random>
#include <vector>

#include "ckks/decryptor.hpp"
#include "ckks/encoder.hpp"
#include "ckks/encryptor.hpp"
#include "ckks/evaluator.hpp"
#include "core/simulator.hpp"

int main() {
  using namespace abc;
  std::puts("== Encrypted inference (dense layer + square activation) ==\n");

  // Depth-3 computation: weights multiply, activation square, output scale.
  ckks::CkksParams params = ckks::CkksParams::sweep_point(13, 6);
  auto ctx = ckks::CkksContext::create(params);
  ckks::CkksEncoder encoder(ctx);
  ckks::KeyGenerator keygen(ctx);
  const ckks::SecretKey sk = keygen.secret_key();
  ckks::Encryptor encryptor(ctx, keygen.public_key(sk));
  ckks::Decryptor decryptor(ctx, sk);
  ckks::Evaluator eval(ctx);

  // Client: feature vector packed one feature per slot.
  const std::size_t features = encoder.slots();
  std::mt19937_64 rng(7);
  std::uniform_real_distribution<double> dist(-0.5, 0.5);
  std::vector<std::complex<double>> x(features);
  std::vector<double> w(features), b(features);
  for (std::size_t i = 0; i < features; ++i) {
    x[i] = {dist(rng), 0.0};
    w[i] = dist(rng);
    b[i] = dist(rng);
  }

  std::printf("Client: encrypting %zu features at %zu limbs...\n", features,
              params.num_limbs);
  const ckks::Plaintext pt_x = encoder.encode(x, params.num_limbs);
  const ckks::Ciphertext ct_x = encryptor.encrypt(pt_x);

  // Server (no secret key): y = 0.5 * (w .* x + b)^2, element-wise.
  // The 0.5 folds into the linear layer: 0.5*(wx+b)^2 = (w'x + b')^2 with
  // w' = w*sqrt(0.5), b' = b*sqrt(0.5) — one fewer multiplicative level.
  std::puts("Server: evaluating 0.5*(w.*x + b)^2 homomorphically...");
  const double root_half = std::sqrt(0.5);
  std::vector<double> w_scaled(features);
  for (std::size_t i = 0; i < features; ++i) w_scaled[i] = w[i] * root_half;
  const ckks::Plaintext pt_w = encoder.encode_real(w_scaled, ct_x.limbs());
  ckks::Ciphertext y = eval.mul_plain(ct_x, pt_w);
  eval.rescale_inplace(y);

  // Bias must match y's level and scale. Encoding happens at the context
  // scale Delta; declaring the plaintext at y.scale re-interprets the
  // stored integers, so pre-scale the values by y.scale/Delta to
  // compensate exactly.
  std::vector<std::complex<double>> b_adjusted(features);
  const double scale_ratio = y.scale / ctx->params().scale();
  for (std::size_t i = 0; i < features; ++i) {
    b_adjusted[i] = {b[i] * root_half * scale_ratio, 0.0};
  }
  ckks::Plaintext pt_b = encoder.encode(b_adjusted, y.limbs());
  pt_b.scale = y.scale;
  y = eval.add_plain(y, pt_b);

  ckks::Ciphertext logits = eval.mul(y, y);  // 3 components, scale^2
  eval.rescale_inplace(logits);

  // Client: decrypt + decode.
  std::puts("Client: decrypting logits...");
  const auto decoded = encoder.decode(decryptor.decrypt(logits));

  double max_err = 0.0;
  for (std::size_t i = 0; i < features; ++i) {
    const double t = w[i] * x[i].real() + b[i];
    const double expect = 0.5 * t * t;
    max_err = std::max(max_err, std::abs(decoded[i].real() - expect));
  }
  std::printf("\nMax |HE - cleartext| over %zu outputs: %.3g\n", features,
              max_err);

  // The client-side cost is exactly what ABC-FHE accelerates.
  core::ArchConfig cfg = core::ArchConfig::paper_default();
  cfg.log_n = params.log_n;
  cfg.fresh_limbs = params.num_limbs;
  cfg.returned_limbs = logits.limbs();
  cfg.enc_profile = core::EncryptProfile::public_key();
  core::AbcFheSimulator sim(cfg);
  std::printf(
      "\nClient cost on ABC-FHE: encode+encrypt %.3f ms, decode+decrypt "
      "%.3f ms per inference\n",
      sim.encode_encrypt_ms(), sim.decode_decrypt_ms());
  return max_err < 0.05 ? 0 : 1;
}
