// Encrypted inference round trip — the workload motivating the paper's
// Fig. 1, now end to end through the key-switching subsystem. The client
// encodes and encrypts a feature vector and generates the switching keys;
// the "server" evaluates a dense layer with a polynomial activation and a
// *real* slot reduction: relinearized ciphertext products and a
// rotate-and-sum tree that folds every slot into the logit, exactly the
// pattern BTS-class servers run.
//
//   client: encode + encrypt + keygen     (what ABC-FHE accelerates)
//   server: y = 0.5*(w.*x + b)^2          (CKKS-friendly activation)
//           relinearize(y*y is 3 comps)   (relin key)
//           logit = sum_slots(y)          (rotate-and-sum, Galois keys)
//   client: decrypt + decode + verify_decode
//
// Run: ./build/encrypted_inference

#include <cmath>
#include <complex>
#include <cstdio>
#include <random>
#include <vector>

#include "ckks/decryptor.hpp"
#include "ckks/encoder.hpp"
#include "ckks/encryptor.hpp"
#include "ckks/evaluator.hpp"
#include "ckks/noise.hpp"
#include "core/simulator.hpp"

int main() {
  using namespace abc;
  std::puts(
      "== Encrypted inference (dense layer + square + rotate-and-sum) ==\n");

  // Depth-3 computation: weights multiply, activation square, reduction.
  ckks::CkksParams params = ckks::CkksParams::sweep_point(13, 6);
  auto ctx = ckks::CkksContext::create(params);
  ckks::CkksEncoder encoder(ctx);
  ckks::KeyGenerator keygen(ctx);
  const ckks::SecretKey sk = keygen.secret_key();
  ckks::Encryptor encryptor(ctx, keygen.public_key(sk));
  ckks::Decryptor decryptor(ctx, sk);
  ckks::Evaluator eval(ctx);

  // Client: feature vector packed one feature per slot, plus the key set
  // the server needs — relin + the log2(slots) power-of-two Galois keys of
  // the reduction tree.
  const std::size_t features = encoder.slots();
  std::mt19937_64 rng(7);
  std::uniform_real_distribution<double> dist(-0.5, 0.5);
  std::vector<std::complex<double>> x(features);
  std::vector<double> w(features), b(features);
  for (std::size_t i = 0; i < features; ++i) {
    x[i] = {dist(rng), 0.0};
    w[i] = dist(rng);
    b[i] = dist(rng);
  }

  std::printf("Client: encrypting %zu features at %zu limbs...\n", features,
              params.num_limbs);
  const ckks::Plaintext pt_x = encoder.encode(x, params.num_limbs);
  const ckks::Ciphertext ct_x = encryptor.encrypt(pt_x);

  std::vector<int> tree_steps;
  for (std::size_t s = 1; s < features; s <<= 1) {
    tree_steps.push_back(static_cast<int>(s));
  }
  std::printf("Client: generating relin + %zu Galois keys...\n",
              tree_steps.size());
  const ckks::RelinKey rlk = keygen.relin_key(sk);
  const ckks::GaloisKeys gks = keygen.galois_keys(sk, tree_steps);

  // Server (no secret key): y = 0.5 * (w .* x + b)^2, element-wise.
  // The 0.5 folds into the linear layer: 0.5*(wx+b)^2 = (w'x + b')^2 with
  // w' = w*sqrt(0.5), b' = b*sqrt(0.5) — one fewer multiplicative level.
  std::puts("Server: evaluating 0.5*(w.*x + b)^2 homomorphically...");
  const double root_half = std::sqrt(0.5);
  std::vector<double> w_scaled(features);
  for (std::size_t i = 0; i < features; ++i) w_scaled[i] = w[i] * root_half;
  const ckks::Plaintext pt_w = encoder.encode_real(w_scaled, ct_x.limbs());
  ckks::Ciphertext y = eval.mul_plain(ct_x, pt_w);
  eval.rescale_inplace(y);

  // Bias must match y's level and scale. Encoding happens at the context
  // scale Delta; declaring the plaintext at y.scale re-interprets the
  // stored integers, so pre-scale the values by y.scale/Delta to
  // compensate exactly.
  std::vector<std::complex<double>> b_adjusted(features);
  const double scale_ratio = y.scale / ctx->params().scale();
  for (std::size_t i = 0; i < features; ++i) {
    b_adjusted[i] = {b[i] * root_half * scale_ratio, 0.0};
  }
  ckks::Plaintext pt_b = encoder.encode(b_adjusted, y.limbs());
  pt_b.scale = y.scale;
  y = eval.add_plain(y, pt_b);

  ckks::Ciphertext act = eval.mul(y, y);  // 3 components, scale^2
  std::puts("Server: relinearizing the squared activation...");
  ckks::KeySwitchScratch scratch;
  eval.relinearize_inplace(act, rlk, &scratch);
  eval.rescale_inplace(act);

  // Rotate-and-sum: after log2(slots) doubling rotations every slot holds
  // sum_i y_i — the layer's logit.
  std::printf("Server: rotate-and-sum over %zu slots (%zu rotations)...\n",
              features, tree_steps.size());
  ckks::Ciphertext logit = act;
  for (const int step : tree_steps) {
    logit = eval.add(logit, eval.rotate(logit, step, gks, &scratch));
  }

  // Client: decrypt + decode + verify against the cleartext computation.
  std::puts("Client: decrypting + verifying the logit...");
  double expect = 0.0;
  for (std::size_t i = 0; i < features; ++i) {
    const double t = w[i] * x[i].real() + b[i];
    expect += 0.5 * t * t;
  }
  const std::vector<std::complex<double>> expect_slots(features,
                                                       {expect, 0.0});
  const ckks::VerifyReport report = ckks::verify_decode(
      *ctx, logit, decryptor, encoder, expect_slots, 0.05);
  std::printf(
      "\nLogit (all slots): expected %.6f, max |HE - cleartext| %.3g "
      "(%.1f bits) -> %s\n",
      expect, report.max_abs_error, report.precision_bits,
      report.ok ? "OK" : "FAILED");

  // The client-side cost is exactly what ABC-FHE accelerates.
  core::ArchConfig cfg = core::ArchConfig::paper_default();
  cfg.log_n = params.log_n;
  cfg.fresh_limbs = params.num_limbs;
  cfg.returned_limbs = logit.limbs();
  cfg.enc_profile = core::EncryptProfile::public_key();
  core::AbcFheSimulator sim(cfg);
  std::printf(
      "\nClient cost on ABC-FHE: encode+encrypt %.3f ms, decode+decrypt "
      "%.3f ms per inference\n",
      sim.encode_encrypt_ms(), sim.decode_decrypt_ms());
  return report.ok ? 0 : 1;
}
