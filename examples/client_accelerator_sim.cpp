// Drives the ABC-FHE cycle-level simulator directly: configures the
// architecture, runs the three RSC operating modes (paper Sec. III), and
// prints latency, throughput, utilization, DRAM traffic, plus the area /
// power report of the configured chip.
//
// Run: ./build/examples/client_accelerator_sim

#include <cstdio>

#include "common/table.hpp"
#include "core/area_model.hpp"
#include "core/simulator.hpp"
#include "core/tech_scale.hpp"

int main() {
  using namespace abc;
  std::puts("== ABC-FHE accelerator simulator demo ==\n");

  core::ArchConfig cfg = core::ArchConfig::paper_default();
  cfg.enc_profile = core::EncryptProfile::public_key();
  std::printf(
      "Configuration: %d RSC x %d PNL, P = %d lanes, %d MHz, LPDDR5 "
      "%.1f GB/s\nWorkload: N = 2^%d, %zu-limb encrypt, %zu-limb decrypt\n\n",
      cfg.num_rsc, cfg.pnl_per_rsc, cfg.lanes,
      static_cast<int>(cfg.clock_hz / 1e6), cfg.dram.bandwidth_gbps,
      cfg.log_n, cfg.fresh_limbs, cfg.returned_limbs);

  core::AbcFheSimulator sim(cfg);

  TextTable modes("Operating modes (batch of 8 jobs)");
  modes.set_header({"Mode", "Makespan (ms)", "Jobs/s", "PNL util",
                    "MSE util", "DRAM rd (MB)", "DRAM wr (MB)"});
  const struct {
    core::OperatingMode mode;
    const char* name;
  } cases[] = {
      {core::OperatingMode::kDualEncrypt, "dual-encrypt"},
      {core::OperatingMode::kDualDecrypt, "dual-decrypt"},
      {core::OperatingMode::kConcurrent, "encrypt + decrypt"},
  };
  for (const auto& c : cases) {
    const auto rep = sim.run(c.mode, 8);
    modes.add_row({c.name, TextTable::fmt(rep.latency_ms, 3),
                   TextTable::fmt(rep.throughput_per_s, 0),
                   TextTable::fmt(rep.pnl_utilization, 2),
                   TextTable::fmt(rep.mse_utilization, 2),
                   TextTable::fmt(rep.dram_read_mb, 1),
                   TextTable::fmt(rep.dram_write_mb, 1)});
  }
  modes.print();

  std::printf("\nSingle-job latency: encode+encrypt %.3f ms, "
              "decode+decrypt %.3f ms\n\n",
              sim.encode_encrypt_ms(), sim.decode_decrypt_ms());

  // Chip report.
  const core::TechConstants tc = core::calibrate_28nm();
  const core::AreaPowerBreakdown bd = core::abc_fhe_breakdown(cfg, tc);
  std::printf("Chip at 28 nm: %.2f mm^2, %.2f W; at 7 nm: %.2f mm^2, %.2f W\n",
              bd.total_area_mm2(), bd.total_power_w(),
              core::scale_area_mm2(bd.total_area_mm2(), core::TechNode::k7),
              core::scale_power_w(bd.total_power_w(), core::TechNode::k7));
  return 0;
}
