// Batch client: a client-side workload encrypting a batch of telemetry
// vectors for upload — the serving scenario behind the ROADMAP north star.
// Uses the symmetric seeded mode (1 NTT pass per limb, seed-compressed c1,
// the paper's 27.0 MOPs profile) and the ThreadPoolBackend so the batch
// spreads across every core.
//
// Build & run:
//   cmake -B build && cmake --build build -j
//   ./build/batch_client

#include <chrono>
#include <cstdio>
#include <random>
#include <vector>

#include "backend/thread_pool_backend.hpp"
#include "ckks/decryptor.hpp"
#include "engine/batch_encryptor.hpp"

int main() {
  using namespace abc;
  std::puts("== ABC-FHE batch client ==\n");

  // 1. Moderate parameters keep the demo snappy; swap in
  //    CkksParams::bootstrappable() for the paper's N = 2^16 set.
  ckks::CkksParams params = ckks::CkksParams::sweep_point(13, 8);
  params.validate();
  auto pool = std::make_shared<backend::ThreadPoolBackend>();
  auto ctx = ckks::CkksContext::create(params, pool);
  std::printf("Parameters: N = 2^%d, %zu limbs; backend '%s' with %zu "
              "workers\n\n",
              params.log_n, params.num_limbs, ctx->backend().name(),
              ctx->backend().workers());

  // 2. Keys and engine (symmetric seeded: only c0 ships per ciphertext).
  ckks::KeyGenerator keygen(ctx);
  const ckks::SecretKey sk = keygen.secret_key();
  engine::BatchEncryptor eng(ctx, sk);

  // 3. A batch of telemetry vectors, one message per "sensor".
  const std::size_t batch = 24;
  std::mt19937_64 rng(123);
  std::uniform_real_distribution<double> dist(-1.0, 1.0);
  std::vector<std::vector<double>> readings(batch);
  for (auto& r : readings) {
    r.resize(ctx->slots());
    for (double& x : r) x = dist(rng);
  }

  // 4. Encode + encrypt the whole batch across the pool.
  const auto t0 = std::chrono::steady_clock::now();
  const auto cts = eng.encrypt_real_batch(readings, params.num_limbs);
  const auto t1 = std::chrono::steady_clock::now();
  const double ms = std::chrono::duration<double, std::milli>(t1 - t0).count();
  std::printf("Encrypted %zu messages in %.1f ms (%.1f msgs/s)\n", batch, ms,
              1e3 * static_cast<double>(batch) / ms);

  double shipped = 0.0;
  for (const auto& ct : cts) shipped += ct.packed_bytes(params.prime_bits);
  std::printf("Upload size: %.2f MB total (%.2f MB/ct, c1 seed-compressed "
              "to 8 bytes)\n\n",
              shipped / 1e6, shipped / 1e6 / static_cast<double>(batch));

  // 5. Spot-check: decrypt a few and compare against the readings.
  ckks::Decryptor dec(ctx, sk);
  ckks::CkksEncoder encoder(ctx);
  double worst_bits = 1e300;
  for (std::size_t i : {std::size_t{0}, batch / 2, batch - 1}) {
    const auto decoded = encoder.decode(dec.decrypt(cts[i]));
    std::vector<std::complex<double>> want(readings[i].size());
    for (std::size_t j = 0; j < want.size(); ++j) want[j] = {readings[i][j], 0.0};
    const ckks::PrecisionReport r = ckks::compare_slots(want, decoded);
    worst_bits = std::min(worst_bits, r.precision_bits);
    std::printf("message %2zu: max error %.3g (%.1f bits)\n", i,
                r.max_abs_error, r.precision_bits);
  }
  std::printf("\n%s\n", worst_bits > 10.0 ? "Batch round trip OK."
                                          : "PRECISION LOSS — investigate!");
  return worst_bits > 10.0 ? 0 : 1;
}
