// Batch client: the full client round trip behind the ROADMAP north star,
// driven through the engine::ClientSession pipeline facade. One session
// object owns the warm context and all three batch engines and walks the
// paper's client lifecycle end to end:
//
//   1. keygen + seed-compressed key bundle (what a server receives once)
//   2. batch encode+encrypt -> "ABCB" ciphertext-batch upload envelope
//   3. (the server round trip -- echoed here)
//   4. batch decode+decrypt + verify_decode on the returned envelope
//
// Uses the symmetric seeded mode (1 NTT pass per limb, seed-compressed c1,
// the paper's 27.0 MOPs profile) and the ThreadPoolBackend so every stage
// spreads across all cores. Exits nonzero if any slot misses its
// precision bound — the same check CI's example smoke gates on.
//
// Build & run:
//   cmake -B build && cmake --build build -j
//   ./build/batch_client

#include <chrono>
#include <complex>
#include <cstdio>
#include <random>
#include <vector>

#include "backend/thread_pool_backend.hpp"
#include "engine/client_session.hpp"

int main() {
  using namespace abc;
  using Clock = std::chrono::steady_clock;
  auto ms_since = [](Clock::time_point t0) {
    return std::chrono::duration<double, std::milli>(Clock::now() - t0)
        .count();
  };

  std::puts("== ABC-FHE batch client (full round-trip session) ==\n");

  // 1. Moderate parameters keep the demo snappy; swap in
  //    CkksParams::bootstrappable() for the paper's N = 2^16 set.
  ckks::CkksParams params = ckks::CkksParams::sweep_point(13, 8);
  params.validate();
  auto pool = std::make_shared<backend::ThreadPoolBackend>();
  auto ctx = ckks::CkksContext::create(params, pool);
  std::printf("Parameters: N = 2^%d, %zu limbs; backend '%s' with %zu "
              "workers\n\n",
              params.log_n, params.num_limbs, ctx->backend().name(),
              ctx->backend().workers());

  // 2. Session setup: keys in the constructor, switching-key bundle on
  //    first use — both costs paid once for the session's lifetime.
  engine::SessionConfig cfg;
  cfg.rotations = {1, 2, 4, 8};
  auto t0 = Clock::now();
  engine::ClientSession session(ctx, cfg);
  const double keygen_ms = ms_since(t0);
  t0 = Clock::now();
  const engine::KeyBundle& keys = session.key_bundle();
  std::printf("Session sk/pk in %.1f ms; switching keys generated + "
              "serialized in %.1f ms — seed-compressed key upload "
              "(pk + relin + %zu Galois) = %.2f MB\n\n",
              keygen_ms, ms_since(t0), keys.galois_keys.size(),
              static_cast<double>(keys.total_bytes()) / 1e6);

  // 3. A batch of telemetry vectors, one message per "sensor".
  const std::size_t batch = 24;
  std::mt19937_64 rng(123);
  std::uniform_real_distribution<double> dist(-1.0, 1.0);
  std::vector<std::vector<std::complex<double>>> readings(batch);
  for (auto& r : readings) {
    r.resize(ctx->slots());
    for (auto& x : r) x = {dist(rng), 0.0};
  }

  // 4. Upload path: encode + encrypt the whole batch across the pool and
  //    pack it into one ciphertext-batch envelope.
  t0 = Clock::now();
  const std::vector<u8> envelope =
      session.upload(readings, params.num_limbs);
  const double up_ms = ms_since(t0);
  std::printf("Encrypted + packed %zu messages in %.1f ms (%.1f msgs/s), "
              "upload %.2f MB (c1 seed-compressed to 8 bytes/ct)\n",
              batch, up_ms, 1e3 * static_cast<double>(batch) / up_ms,
              static_cast<double>(envelope.size()) / 1e6);

  // 5. The server would evaluate and return an envelope of the same shape;
  //    this demo round-trips the upload itself, so the expected slot
  //    values are the original readings.
  const std::vector<u8>& returned = envelope;

  // 6. Download path: parse + batched decode/decrypt + per-slot precision
  //    verification, all in one call on the warm engines.
  t0 = Clock::now();
  const engine::BatchVerifyReport report =
      session.verify_download(returned, readings);
  const double down_ms = ms_since(t0);
  std::printf("Decrypted + verified %zu ciphertexts in %.1f ms "
              "(%.1f msgs/s)\n\n",
              batch, down_ms, 1e3 * static_cast<double>(batch) / down_ms);

  std::printf("Verify report: %zu/%zu slot vectors within bound, worst "
              "error %.3g (%.1f bits)\n",
              report.passed, report.passed + report.failed,
              report.worst_abs_error, report.worst_precision_bits);
  std::printf("\n%s\n", report.ok ? "Full round-trip session OK."
                                  : "PRECISION LOSS — investigate!");
  return report.ok ? 0 : 1;
}
