// Reproduces Fig. 2: workload analysis of CKKS client-side operations at
// the bootstrappable parameter set (N = 2^16, 12 double-scaled levels =
// 24 limbs for encode+encrypt, 1 level = 2 limbs for decode+decrypt).
// Counts are measured by instrumented kernels, not estimated.
// Paper reference points: 27.0 MOPs encode+encrypt, 2.9 MOPs
// decode+decrypt (seed-compressed profile; see DESIGN.md Sec. 5).

#include <cstdio>

#include "baseline/cpu_reference.hpp"
#include "common/table.hpp"

namespace {

using namespace abc;

void print_breakdown(const char* title, const xf::OpCounts& ops) {
  const double total = static_cast<double>(ops.total());
  TextTable table(title);
  table.set_header({"Operation class", "MOPs", "Share"});
  auto row = [&](const char* name, u64 count) {
    table.add_row({name, TextTable::fmt(count / 1e6, 2),
                   TextTable::fmt(100.0 * count / total, 1) + "%"});
  };
  row("I/NTT (modular butterflies)", ops.ntt_total());
  row("I/FFT (FP butterflies)", ops.fft_total());
  row("Poly mult/add (element-wise)", ops.poly_total());
  row("Others (RNS expand, CRT, sampling)", ops.other);
  table.add_row({"Total", TextTable::fmt(total / 1e6, 2), "100%"});
  table.print();
  std::puts("");
}

}  // namespace

int main() {
  std::puts("ABC-FHE reproduction :: Fig. 2 (client-side workload analysis)\n");
  std::puts("Parameters: N = 2^16, 24-limb fresh ciphertexts (double-scale),");
  std::puts("2-limb server-returned ciphertexts.\n");

  ckks::CkksParams params = ckks::CkksParams::bootstrappable();

  for (auto [mode, name] :
       {std::pair{ckks::EncryptMode::kSymmetricSeeded,
                  "seed-compressed symmetric (1 NTT/limb, paper op budget)"},
        std::pair{ckks::EncryptMode::kPublicKey,
                  "public-key fresh (3 NTT/limb)"}}) {
    std::printf("--- Encryption profile: %s ---\n\n", name);
    baseline::CpuClientPipeline pipeline(params, mode, params.num_limbs, 2);
    const baseline::CpuMeasurement m = pipeline.measure(1);

    print_breakdown("Encoding + Encrypt operation breakdown",
                    m.encode_encrypt_ops);
    print_breakdown("Decoding + Decrypt operation breakdown",
                    m.decode_decrypt_ops);

    const double enc_mops = m.encode_encrypt_ops.total() / 1e6;
    const double dec_mops = m.decode_decrypt_ops.total() / 1e6;
    std::printf(
        "Totals: encode+encrypt %.1f MOPs, decode+decrypt %.1f MOPs, "
        "imbalance %.1fx (paper: 27.0 / 2.9 MOPs, ~9.3x)\n\n",
        enc_mops, dec_mops, enc_mops / dec_mops);
  }
  return 0;
}
