// Kernel-level microbenchmarks: the primitive throughputs behind the CPU
// baseline of Fig. 5(a) — NTT/INTT (seed eager-reduction kernel vs. the
// Harvey lazy-reduction portable and AVX2 kernels), the batched dyadic ops
// (seed per-element Barrett vs. the simd/ kernel set), the canonical-
// embedding DWT, hardware-model modular multipliers, ChaCha20 expansion,
// and end-to-end encode/encrypt at bootstrappable parameters.
//
// Usage: bench_kernels [--quick] [--reps N] [--json out.json]
//   --quick restricts sizes and reps for CI smoke runs; --json emits the
//   machine-readable results (bench_util.hpp schema), including
//   "ntt_roundtrip_speedup/..." — the lazy-vs-eager forward+inverse ratio
//   the PR 2 acceptance gate reads.

#include <cstdio>
#include <functional>
#include <random>
#include <span>
#include <string>
#include <vector>

#include "bench_util.hpp"
#include "ckks/encoder.hpp"
#include "ckks/encryptor.hpp"
#include "common/table.hpp"
#include "prng/chacha20.hpp"
#include "rns/modmul_algorithms.hpp"
#include "rns/montgomery.hpp"
#include "rns/ntt_prime.hpp"
#include "simd/dyadic_kernels.hpp"
#include "simd/simd_caps.hpp"
#include "transform/dwt.hpp"
#include "transform/ntt.hpp"

namespace {

using namespace abc;

std::vector<u64> random_poly(std::size_t n, u64 q, u64 seed) {
  std::mt19937_64 rng(seed);
  std::vector<u64> a(n);
  for (u64& v : a) v = rng() % q;
  return a;
}

struct NttVariant {
  const char* name;
  simd::KernelArch arch;  // meaningful for the lazy kernels only
  bool eager;
};

void bench_ntt(bench::JsonReporter& rep, TextTable& table, int reps,
               bool quick) {
  const bool have_avx2 = simd::avx2_selectable();
  std::vector<NttVariant> variants = {
      {"eager", simd::KernelArch::kPortable, true},
      {"lazy_portable", simd::KernelArch::kPortable, false},
  };
  if (have_avx2) {
    variants.push_back({"lazy_avx2", simd::KernelArch::kAvx2, false});
  }

  const std::vector<int> sizes = quick ? std::vector<int>{13, 16}
                                       : std::vector<int>{13, 14, 15, 16};
  for (int log_n : sizes) {
    const rns::Modulus q(rns::select_prime_chain(36, log_n, 1)[0]);
    const xf::NttTables tables(q, log_n);
    const std::size_t n = tables.n();
    const std::string suffix = "/n=2^" + std::to_string(log_n);

    double eager_roundtrip = 0;
    for (const NttVariant& v : variants) {
      simd::set_kernel_arch_for_testing(v.arch);
      std::vector<u64> a = random_poly(n, q.value(), 1);
      // forward keeps values canonical, so repeated application is stable.
      const double fwd = bench::time_best_of(reps, [&] {
        v.eager ? tables.forward_eager(a) : tables.forward(a);
      });
      std::vector<u64> b = random_poly(n, q.value(), 2);
      const double inv = bench::time_best_of(reps, [&] {
        v.eager ? tables.inverse_eager(b) : tables.inverse(b);
      });
      if (v.eager) eager_roundtrip = fwd + inv;
      rep.add_timing(std::string("ntt_fwd/") + v.name + suffix, fwd,
                     static_cast<double>(n));
      rep.add_timing(std::string("ntt_inv/") + v.name + suffix, inv,
                     static_cast<double>(n));
      const double speedup = eager_roundtrip / (fwd + inv);
      rep.add_metric(std::string("ntt_roundtrip_speedup/") + v.name + suffix,
                     "speedup", speedup);
      table.add_row({"ntt fwd+inv " + std::to_string(log_n), v.name,
                     bench::fmt_time(fwd + inv),
                     TextTable::fmt(speedup, 2) + "x"});
    }
  }
  simd::set_kernel_arch_for_testing(simd::detected_kernel_arch());
}

void bench_dyadic(bench::JsonReporter& rep, TextTable& table, int reps) {
  const int log_n = 16;
  const std::size_t n = std::size_t{1} << log_n;
  const rns::Modulus q(rns::select_prime_chain(36, log_n, 1)[0]);
  const simd::DyadicModulus dm = simd::DyadicModulus::make(q);
  const std::vector<u64> src = random_poly(n, q.value(), 3);
  const std::vector<u64> aux = random_poly(n, q.value(), 4);
  const rns::ShoupMul scalar = rns::ShoupMul::make(q.reduce(12345), q);

  struct Op {
    const char* name;
    std::function<void(u64*)> seed;      // seed per-element Modulus loop
    std::function<void(u64*)> kernel;    // simd/ kernel (active arch)
  };
  const std::vector<Op> ops = {
      {"add",
       [&](u64* d) { for (std::size_t j = 0; j < n; ++j) d[j] = q.add(d[j], src[j]); },
       [&](u64* d) { simd::dyadic_add(dm, d, src.data(), n); }},
      {"sub",
       [&](u64* d) { for (std::size_t j = 0; j < n; ++j) d[j] = q.sub(d[j], src[j]); },
       [&](u64* d) { simd::dyadic_sub(dm, d, src.data(), n); }},
      {"mul",
       [&](u64* d) { for (std::size_t j = 0; j < n; ++j) d[j] = q.mul(d[j], src[j]); },
       [&](u64* d) { simd::dyadic_mul(dm, d, src.data(), n); }},
      {"fma",
       [&](u64* d) {
         for (std::size_t j = 0; j < n; ++j)
           d[j] = q.add(d[j], q.mul(src[j], aux[j]));
       },
       [&](u64* d) { simd::dyadic_fma(dm, d, src.data(), aux.data(), n); }},
      {"mul_scalar",
       [&](u64* d) {
         for (std::size_t j = 0; j < n; ++j) d[j] = q.mul(d[j], scalar.operand);
       },
       [&](u64* d) {
         simd::dyadic_mul_scalar(dm, d, n, scalar.operand, scalar.quotient);
       }},
      {"negate",
       [&](u64* d) { for (std::size_t j = 0; j < n; ++j) d[j] = q.negate(d[j]); },
       [&](u64* d) { simd::dyadic_negate(dm, d, n); }},
  };

  const bool have_avx2 = simd::avx2_selectable();
  for (const Op& op : ops) {
    std::vector<u64> d = random_poly(n, q.value(), 5);
    const double seed_t =
        bench::time_best_of(reps, [&] { op.seed(d.data()); });
    rep.add_timing(std::string("dyadic/") + op.name + "/seed", seed_t,
                   static_cast<double>(n));

    simd::set_kernel_arch_for_testing(simd::KernelArch::kPortable);
    d = random_poly(n, q.value(), 5);
    const double port_t =
        bench::time_best_of(reps, [&] { op.kernel(d.data()); });
    rep.add_timing(std::string("dyadic/") + op.name + "/portable", port_t,
                   static_cast<double>(n));

    double best_t = port_t;
    const char* best_name = "portable";
    if (have_avx2) {
      simd::set_kernel_arch_for_testing(simd::KernelArch::kAvx2);
      d = random_poly(n, q.value(), 5);
      const double avx_t =
          bench::time_best_of(reps, [&] { op.kernel(d.data()); });
      rep.add_timing(std::string("dyadic/") + op.name + "/avx2", avx_t,
                     static_cast<double>(n));
      if (avx_t < best_t) {
        best_t = avx_t;
        best_name = "avx2";
      }
    }
    rep.add_metric(std::string("dyadic_speedup/") + op.name, "speedup",
                   seed_t / best_t);
    table.add_row({std::string("dyadic ") + op.name + " 2^16", best_name,
                   bench::fmt_time(best_t),
                   TextTable::fmt(seed_t / best_t, 2) + "x"});
  }
  simd::set_kernel_arch_for_testing(simd::detected_kernel_arch());
}

void bench_misc(bench::JsonReporter& rep, TextTable& table, int reps,
                bool quick) {
  // Canonical-embedding DWT.
  for (int log_n : {14, 16}) {
    const xf::CkksDwtPlan plan(log_n);
    std::vector<xf::Cx<double>> a(plan.n(), {1.0, 0.5});
    const double t = bench::time_best_of(
        reps, [&] { plan.forward(std::span<xf::Cx<double>>(a)); });
    rep.add_timing("dwt_fwd/n=2^" + std::to_string(log_n), t,
                   static_cast<double>(plan.n()));
    table.add_row({"dwt fwd " + std::to_string(log_n), "-",
                   bench::fmt_time(t), "-"});
  }

  // Hardware-model modular multipliers (dependent-chain latency).
  const u64 qv = (u64{1} << 36) - (u64{1} << 18) + 1;
  constexpr int kChain = 1 << 18;
  auto chain = [&](auto& mm, const char* name) {
    std::mt19937_64 rng(3);
    u64 a = rng() % qv;
    const u64 b = rng() % qv;
    const double t = bench::time_best_of(reps, [&] {
      for (int i = 0; i < kChain; ++i) a = mm.mul(a, b) | 1;
    });
    rep.add_timing(std::string("hw_modmul/") + name, t,
                   static_cast<double>(kChain));
    table.add_row({std::string("hw modmul ") + name, "-",
                   bench::fmt_time(t / kChain), "-"});
  };
  rns::BarrettHwModMul barrett(qv);
  rns::MontgomeryHwModMul mont(qv, 44);
  rns::NttFriendlyMontgomeryHwModMul ntt_mont(qv, 44);
  chain(barrett, "barrett");
  chain(mont, "montgomery");
  chain(ntt_mont, "ntt_montgomery");

  // ChaCha20 expansion.
  {
    prng::ChaCha20 rng({1, 2, 3}, 0);
    std::vector<u8> buf(4096);
    const double t = bench::time_best_of(reps, [&] { rng.fill_bytes(buf); });
    rep.add_timing("chacha20_expand_4096B", t,
                   static_cast<double>(buf.size()));
    table.add_row({"chacha20 4096B", "-", bench::fmt_time(t), "-"});
  }

  // End-to-end encode+encrypt (reduced-depth; full numbers come from
  // bench_fig5a_latency).
  if (!quick) {
    auto ctx =
        ckks::CkksContext::create(ckks::CkksParams::sweep_point(14, 8));
    ckks::CkksEncoder encoder(ctx);
    ckks::KeyGenerator keygen(ctx);
    const ckks::SecretKey sk = keygen.secret_key();
    ckks::Encryptor enc(ctx, sk);
    std::vector<std::complex<double>> msg(encoder.slots(), {0.5, -0.25});
    const double t = bench::time_best_of(reps, [&] {
      ckks::Ciphertext ct = enc.encrypt(encoder.encode(msg, 8));
      if (ct.components.empty()) std::abort();
    });
    rep.add_timing("encode_encrypt/n=2^14/limbs=8", t, 1.0);
    table.add_row({"encode+encrypt 2^14x8", "-", bench::fmt_time(t), "-"});
  }
}

}  // namespace

int main(int argc, char** argv) {
  const bench::BenchArgs args = bench::BenchArgs::parse(argc, argv);
  const int reps = args.reps > 0 ? args.reps : (args.quick ? 2 : 5);

  std::printf("ABC-FHE reproduction :: kernel microbenchmarks\n");
  std::printf("Kernel arch: %s (AVX2 %s; set ABC_FORCE_PORTABLE_KERNELS=1 "
              "to force portable)\n\n",
              simd::kernel_arch_name(simd::active_kernel_arch()),
              simd::avx2_supported() ? "available" : "unavailable");

  bench::JsonReporter rep("bench_kernels");
  rep.add_metric("meta/avx2_supported", "value",
                 simd::avx2_supported() ? 1.0 : 0.0);

  TextTable table("Kernel timings (best of " + std::to_string(reps) +
                  " reps; speed-up vs seed kernel where applicable)");
  table.set_header({"Kernel", "Variant", "Time", "Speed-up"});

  bench_ntt(rep, table, reps, args.quick);
  bench_dyadic(rep, table, reps);
  bench_misc(rep, table, reps, args.quick);

  table.print();

  if (!args.json_path.empty()) {
    if (!rep.write(args.json_path)) return 1;
    std::printf("\nJSON results written to %s\n", args.json_path.c_str());
  }
  return 0;
}
