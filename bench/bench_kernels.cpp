// Kernel-level microbenchmarks (google-benchmark): the primitive
// throughputs behind the CPU baseline of Fig. 5(a) — NTT/INTT, the
// canonical-embedding DWT, hardware-model modular multipliers, ChaCha20
// expansion, and end-to-end encode/encrypt at bootstrappable parameters.

#include <benchmark/benchmark.h>

#include <random>

#include "ckks/encoder.hpp"
#include "ckks/encryptor.hpp"
#include "prng/samplers.hpp"
#include "rns/modmul_algorithms.hpp"
#include "rns/ntt_prime.hpp"
#include "transform/dwt.hpp"
#include "transform/ntt.hpp"

namespace {

using namespace abc;

void BM_NttForward(benchmark::State& state) {
  const int log_n = static_cast<int>(state.range(0));
  const rns::Modulus q(rns::select_prime_chain(36, log_n, 1)[0]);
  const xf::NttTables tables(q, log_n);
  std::mt19937_64 rng(1);
  std::vector<u64> a(tables.n());
  for (u64& v : a) v = rng() % q.value();
  for (auto _ : state) {
    tables.forward(a);
    benchmark::DoNotOptimize(a.data());
  }
  state.SetItemsProcessed(state.iterations() *
                          static_cast<i64>(tables.n()));
}
BENCHMARK(BM_NttForward)->Arg(13)->Arg(14)->Arg(15)->Arg(16);

void BM_NttInverse(benchmark::State& state) {
  const int log_n = static_cast<int>(state.range(0));
  const rns::Modulus q(rns::select_prime_chain(36, log_n, 1)[0]);
  const xf::NttTables tables(q, log_n);
  std::mt19937_64 rng(2);
  std::vector<u64> a(tables.n());
  for (u64& v : a) v = rng() % q.value();
  for (auto _ : state) {
    tables.inverse(a);
    benchmark::DoNotOptimize(a.data());
  }
  state.SetItemsProcessed(state.iterations() *
                          static_cast<i64>(tables.n()));
}
BENCHMARK(BM_NttInverse)->Arg(16);

void BM_DwtForward(benchmark::State& state) {
  const int log_n = static_cast<int>(state.range(0));
  const xf::CkksDwtPlan plan(log_n);
  std::vector<xf::Cx<double>> a(plan.n(), {1.0, 0.5});
  for (auto _ : state) {
    plan.forward(std::span<xf::Cx<double>>(a));
    benchmark::DoNotOptimize(a.data());
  }
  state.SetItemsProcessed(state.iterations() * static_cast<i64>(plan.n()));
}
BENCHMARK(BM_DwtForward)->Arg(14)->Arg(16);

template <class ModMul>
void BM_HwModMul(benchmark::State& state) {
  const u64 q = (u64{1} << 36) - (u64{1} << 18) + 1;
  ModMul mm = [&] {
    if constexpr (std::is_same_v<ModMul, rns::BarrettHwModMul>) {
      return ModMul(q);
    } else {
      return ModMul(q, 44);
    }
  }();
  std::mt19937_64 rng(3);
  u64 a = rng() % q, b = rng() % q;
  for (auto _ : state) {
    a = mm.mul(a, b) | 1;
    benchmark::DoNotOptimize(a);
  }
}
BENCHMARK_TEMPLATE(BM_HwModMul, rns::BarrettHwModMul);
BENCHMARK_TEMPLATE(BM_HwModMul, rns::MontgomeryHwModMul);
BENCHMARK_TEMPLATE(BM_HwModMul, rns::NttFriendlyMontgomeryHwModMul);

void BM_ChaCha20Expand(benchmark::State& state) {
  prng::ChaCha20 rng({1, 2, 3}, 0);
  std::vector<u8> buf(4096);
  for (auto _ : state) {
    rng.fill_bytes(buf);
    benchmark::DoNotOptimize(buf.data());
  }
  state.SetBytesProcessed(state.iterations() *
                          static_cast<i64>(buf.size()));
}
BENCHMARK(BM_ChaCha20Expand);

void BM_EncodeEncrypt(benchmark::State& state) {
  // Reduced-depth version of the Fig. 5a CPU measurement so the suite
  // stays quick; the full numbers come from bench_fig5a_latency.
  auto ctx = ckks::CkksContext::create(ckks::CkksParams::sweep_point(14, 8));
  ckks::CkksEncoder encoder(ctx);
  ckks::KeyGenerator keygen(ctx);
  const ckks::SecretKey sk = keygen.secret_key();
  ckks::Encryptor enc(ctx, sk);
  std::vector<std::complex<double>> msg(encoder.slots(), {0.5, -0.25});
  for (auto _ : state) {
    ckks::Ciphertext ct = enc.encrypt(encoder.encode(msg, 8));
    benchmark::DoNotOptimize(ct.components.data());
  }
}
BENCHMARK(BM_EncodeEncrypt)->Unit(benchmark::kMillisecond);

}  // namespace

BENCHMARK_MAIN();
