// Kernel-level microbenchmarks: the primitive throughputs behind the CPU
// baseline of Fig. 5(a) — NTT/INTT (seed eager-reduction kernel vs. the
// Harvey lazy-reduction portable/AVX2/AVX-512-IFMA kernels), the batched
// dyadic ops (seed per-element Barrett vs. the simd/ kernel set), the
// fused-vs-unfused single-pass chains (gadget accumulate, negate_add,
// sub_mul_scalar, fma_into), the canonical-embedding DWT, hardware-model
// modular multipliers, ChaCha20 expansion, and end-to-end encode/encrypt
// at bootstrappable parameters.
//
// Usage: bench_kernels [--quick] [--reps N] [--json out.json]
//                      [--arch portable|avx2|avx512ifma]
//   --quick restricts sizes and reps for CI smoke runs; --arch restricts
//   the kernel sections to one tier (must be selectable on the host);
//   --json emits the machine-readable results (bench_util.hpp schema):
//   "ntt_roundtrip_speedup/..." — the lazy-vs-eager forward+inverse ratio
//   the PR 2 acceptance gate reads — and "kernels/..." records in the
//   unified {op, arch, fused, ns_per_op} schema, whose derived
//   "fused_speedup/<op>/<arch>" entries the fused-pass acceptance gate
//   reads.

#include <algorithm>
#include <cstdio>
#include <functional>
#include <random>
#include <span>
#include <string>
#include <vector>

#include "bench_util.hpp"
#include "ckks/encoder.hpp"
#include "ckks/encryptor.hpp"
#include "common/table.hpp"
#include "prng/chacha20.hpp"
#include "rns/modmul_algorithms.hpp"
#include "rns/montgomery.hpp"
#include "rns/ntt_prime.hpp"
#include "simd/dyadic_kernels.hpp"
#include "simd/simd_caps.hpp"
#include "transform/dwt.hpp"
#include "transform/ntt.hpp"

namespace {

using namespace abc;

std::vector<u64> random_poly(std::size_t n, u64 q, u64 seed) {
  std::mt19937_64 rng(seed);
  std::vector<u64> a(n);
  for (u64& v : a) v = rng() % q;
  return a;
}

/// The arch tiers this run benches: every selectable tier, or just the one
/// named by --arch (exits with an error if it is not selectable here).
std::vector<simd::KernelArch> bench_arches(const std::string& requested) {
  std::vector<simd::KernelArch> all = {simd::KernelArch::kPortable};
  if (simd::avx2_selectable()) all.push_back(simd::KernelArch::kAvx2);
  if (simd::avx512ifma_selectable())
    all.push_back(simd::KernelArch::kAvx512Ifma);
  if (requested.empty()) return all;
  for (simd::KernelArch arch : all) {
    if (requested == simd::kernel_arch_name(arch)) return {arch};
  }
  std::fprintf(stderr,
               "bench_kernels: --arch %s is not selectable on this host "
               "(unsupported CPU, non-SIMD build, or an env veto)\n",
               requested.c_str());
  std::exit(1);
}

struct NttVariant {
  std::string name;
  simd::KernelArch arch;  // meaningful for the lazy kernels only
  bool eager;
};

void bench_ntt(bench::JsonReporter& rep, TextTable& table, int reps,
               bool quick, const std::vector<simd::KernelArch>& arches) {
  std::vector<NttVariant> variants = {
      {"eager", simd::KernelArch::kPortable, true},
  };
  for (simd::KernelArch arch : arches) {
    variants.push_back(
        {std::string("lazy_") + simd::kernel_arch_name(arch), arch, false});
  }

  const std::vector<int> sizes = quick ? std::vector<int>{13, 16}
                                       : std::vector<int>{13, 14, 15, 16};
  for (int log_n : sizes) {
    const rns::Modulus q(rns::select_prime_chain(36, log_n, 1)[0]);
    const xf::NttTables tables(q, log_n);
    const std::size_t n = tables.n();
    const std::string suffix = "/n=2^" + std::to_string(log_n);

    double eager_roundtrip = 0;
    for (const NttVariant& v : variants) {
      simd::set_kernel_arch_for_testing(v.arch);
      std::vector<u64> a = random_poly(n, q.value(), 1);
      // forward keeps values canonical, so repeated application is stable.
      const double fwd = bench::time_best_of(reps, [&] {
        v.eager ? tables.forward_eager(a) : tables.forward(a);
      });
      std::vector<u64> b = random_poly(n, q.value(), 2);
      const double inv = bench::time_best_of(reps, [&] {
        v.eager ? tables.inverse_eager(b) : tables.inverse(b);
      });
      if (v.eager) eager_roundtrip = fwd + inv;
      rep.add_timing("ntt_fwd/" + v.name + suffix, fwd,
                     static_cast<double>(n));
      rep.add_timing("ntt_inv/" + v.name + suffix, inv,
                     static_cast<double>(n));
      const double speedup = eager_roundtrip / (fwd + inv);
      rep.add_metric("ntt_roundtrip_speedup/" + v.name + suffix, "speedup",
                     speedup);
      table.add_row({"ntt fwd+inv " + std::to_string(log_n), v.name,
                     bench::fmt_time(fwd + inv),
                     TextTable::fmt(speedup, 2) + "x"});
    }
  }
  simd::set_kernel_arch_for_testing(simd::detected_kernel_arch());
}

void bench_dyadic(bench::JsonReporter& rep, TextTable& table, int reps,
                  const std::vector<simd::KernelArch>& arches) {
  const int log_n = 16;
  const std::size_t n = std::size_t{1} << log_n;
  const rns::Modulus q(rns::select_prime_chain(36, log_n, 1)[0]);
  const simd::DyadicModulus dm = simd::DyadicModulus::make(q);
  const std::vector<u64> src = random_poly(n, q.value(), 3);
  const std::vector<u64> aux = random_poly(n, q.value(), 4);
  const rns::ShoupMul scalar = rns::ShoupMul::make(q.reduce(12345), q);

  struct Op {
    const char* name;
    std::function<void(u64*)> seed;      // seed per-element Modulus loop
    std::function<void(u64*)> kernel;    // simd/ kernel (active arch)
  };
  const std::vector<Op> ops = {
      {"add",
       [&](u64* d) { for (std::size_t j = 0; j < n; ++j) d[j] = q.add(d[j], src[j]); },
       [&](u64* d) { simd::dyadic_add(dm, d, src.data(), n); }},
      {"sub",
       [&](u64* d) { for (std::size_t j = 0; j < n; ++j) d[j] = q.sub(d[j], src[j]); },
       [&](u64* d) { simd::dyadic_sub(dm, d, src.data(), n); }},
      {"mul",
       [&](u64* d) { for (std::size_t j = 0; j < n; ++j) d[j] = q.mul(d[j], src[j]); },
       [&](u64* d) { simd::dyadic_mul(dm, d, src.data(), n); }},
      {"fma",
       [&](u64* d) {
         for (std::size_t j = 0; j < n; ++j)
           d[j] = q.add(d[j], q.mul(src[j], aux[j]));
       },
       [&](u64* d) { simd::dyadic_fma(dm, d, src.data(), aux.data(), n); }},
      {"mul_scalar",
       [&](u64* d) {
         for (std::size_t j = 0; j < n; ++j) d[j] = q.mul(d[j], scalar.operand);
       },
       [&](u64* d) {
         simd::dyadic_mul_scalar(dm, d, n, scalar.operand, scalar.quotient);
       }},
      {"negate",
       [&](u64* d) { for (std::size_t j = 0; j < n; ++j) d[j] = q.negate(d[j]); },
       [&](u64* d) { simd::dyadic_negate(dm, d, n); }},
  };

  for (const Op& op : ops) {
    std::vector<u64> d = random_poly(n, q.value(), 5);
    const double seed_t =
        bench::time_best_of(reps, [&] { op.seed(d.data()); });
    rep.add_timing(std::string("dyadic/") + op.name + "/seed", seed_t,
                   static_cast<double>(n));

    double best_t = 1e300;
    const char* best_name = "seed";
    for (simd::KernelArch arch : arches) {
      simd::set_kernel_arch_for_testing(arch);
      d = random_poly(n, q.value(), 5);
      const double t = bench::time_best_of(reps, [&] { op.kernel(d.data()); });
      rep.add_timing(std::string("dyadic/") + op.name + "/" +
                         simd::kernel_arch_name(arch),
                     t, static_cast<double>(n));
      if (t < best_t) {
        best_t = t;
        best_name = simd::kernel_arch_name(arch);
      }
    }
    rep.add_metric(std::string("dyadic_speedup/") + op.name, "speedup",
                   seed_t / best_t);
    table.add_row({std::string("dyadic ") + op.name + " 2^16", best_name,
                   bench::fmt_time(best_t),
                   TextTable::fmt(seed_t / best_t, 2) + "x"});
  }
  simd::set_kernel_arch_for_testing(simd::detected_kernel_arch());
}

/// Fused single-pass kernels vs. the unfused multi-pass chains they replace,
/// per arch tier, in the unified {op, arch, fused, ns_per_op} record schema.
/// The shapes mirror the hot paths: gadget_accumulate is the key-switch
/// inner loop (permutation gather + two fma passes), negate_add the
/// encrypt/keygen combine, sub_mul_scalar the rescale/mod-down tail, and
/// fma_into the decrypt phase computation.
void bench_fused(bench::JsonReporter& rep, TextTable& table, int reps,
                 const std::vector<simd::KernelArch>& arches) {
  // n = 2^18: larger than the single-limb ring so the streams spill L2 the
  // way the real multi-limb/multi-digit key-switch working set does — the
  // saved passes are what fusion is about, so they must actually hit
  // memory here. (The dyadic kernels are plain array ops; n need not be a
  // ring size.)
  const int log_n = 18;
  const std::size_t n = std::size_t{1} << log_n;
  const rns::Modulus q(rns::select_prime_chain(36, 16, 1)[0]);
  const simd::DyadicModulus dm = simd::DyadicModulus::make(q);
  const std::vector<u64> digit = random_poly(n, q.value(), 11);
  const std::vector<u64> kb = random_poly(n, q.value(), 12);
  const std::vector<u64> ka = random_poly(n, q.value(), 13);
  const rns::ShoupMul scalar = rns::ShoupMul::make(q.reduce(98765), q);

  // A Galois-style index permutation (the key-switch gather pattern).
  std::vector<u32> perm(n);
  for (std::size_t j = 0; j < n; ++j) perm[j] = static_cast<u32>(j);
  std::mt19937_64 rng(14);
  std::shuffle(perm.begin(), perm.end(), rng);

  struct FusedOp {
    const char* name;
    std::function<void()> unfused;  // the multi-pass chain it replaces
    std::function<void()> fused;
  };
  std::vector<u64> acc0 = random_poly(n, q.value(), 15);
  std::vector<u64> acc1 = random_poly(n, q.value(), 16);
  std::vector<u64> dst = random_poly(n, q.value(), 17);
  std::vector<u64> src = random_poly(n, q.value(), 18);
  std::vector<u64> out(n);
  std::vector<u64> tmp(n);
  const std::vector<FusedOp> ops = {
      {"gadget_accumulate",
       [&] {
         for (std::size_t j = 0; j < n; ++j) tmp[j] = digit[perm[j]];
         simd::dyadic_fma(dm, acc0.data(), tmp.data(), kb.data(), n);
         simd::dyadic_fma(dm, acc1.data(), tmp.data(), ka.data(), n);
       },
       [&] {
         simd::dyadic_fma_accumulate(dm, acc0.data(), acc1.data(),
                                     digit.data(), kb.data(), ka.data(),
                                     perm.data(), n);
       }},
      {"negate_add",
       [&] {
         simd::dyadic_negate(dm, dst.data(), n);
         simd::dyadic_add(dm, dst.data(), src.data(), n);
       },
       [&] { simd::dyadic_negate_add(dm, dst.data(), src.data(), n); }},
      {"sub_mul_scalar",
       [&] {
         simd::dyadic_sub(dm, dst.data(), src.data(), n);
         simd::dyadic_mul_scalar(dm, dst.data(), n, scalar.operand,
                                 scalar.quotient);
       },
       [&] {
         simd::dyadic_sub_mul_scalar(dm, dst.data(), src.data(), n,
                                     scalar.operand, scalar.quotient);
       }},
      {"fma_into",
       [&] {
         std::copy(acc0.begin(), acc0.end(), out.begin());
         simd::dyadic_fma(dm, out.data(), digit.data(), kb.data(), n);
       },
       [&] {
         simd::dyadic_fma_into(dm, out.data(), acc0.data(), digit.data(),
                               kb.data(), n);
       }},
  };

  // Arch outermost: on parts with AVX-512 license-based frequency
  // throttling this keeps the portable/AVX2 measurements from running in
  // the downclocked shadow of a preceding AVX-512 measurement.
  struct Sample {
    std::string op;
    simd::KernelArch arch;
    double unfused_t;
    double fused_t;
  };
  std::vector<Sample> samples;
  for (simd::KernelArch arch : arches) {
    simd::set_kernel_arch_for_testing(arch);
    for (const FusedOp& op : ops) {
      const char* arch_name = simd::kernel_arch_name(arch);
      const double unfused_t = bench::time_best_of(reps, op.unfused);
      const double fused_t = bench::time_best_of(reps, op.fused);
      samples.push_back({op.name, arch, unfused_t, fused_t});
      const std::string base =
          std::string("kernels/") + op.name + "/" + arch_name;
      rep.add_record(bench::BenchResult{
          base + "/unfused",
          {{"op", op.name}, {"arch", arch_name}},
          {{"fused", 0.0}, {"ns_per_op", unfused_t * 1e9 / n}}});
      rep.add_record(bench::BenchResult{
          base + "/fused",
          {{"op", op.name}, {"arch", arch_name}},
          {{"fused", 1.0}, {"ns_per_op", fused_t * 1e9 / n}}});
      const double speedup = unfused_t / fused_t;
      rep.add_metric(std::string("fused_speedup/") + op.name + "/" + arch_name,
                     "speedup", speedup);
      table.add_row({std::string("fused ") + op.name + " 2^" +
                         std::to_string(log_n),
                     arch_name,
                     bench::fmt_time(fused_t),
                     TextTable::fmt(speedup, 2) + "x"});
    }
  }
  simd::set_kernel_arch_for_testing(simd::detected_kernel_arch());

  // The headline gate: the dispatched fused pass (best benched tier)
  // against the unfused AVX2 chain it replaced on the hot paths.
  for (const FusedOp& op : ops) {
    double avx2_unfused = 0, best_fused = 1e300;
    for (const Sample& s : samples) {
      if (s.op != op.name) continue;
      if (s.arch == simd::KernelArch::kAvx2) avx2_unfused = s.unfused_t;
      best_fused = std::min(best_fused, s.fused_t);
    }
    if (avx2_unfused > 0) {
      rep.add_metric(std::string("fused_speedup_vs_avx2_unfused/") + op.name,
                     "speedup", avx2_unfused / best_fused);
    }
  }
}

void bench_misc(bench::JsonReporter& rep, TextTable& table, int reps,
                bool quick) {
  // Canonical-embedding DWT.
  for (int log_n : {14, 16}) {
    const xf::CkksDwtPlan plan(log_n);
    std::vector<xf::Cx<double>> a(plan.n(), {1.0, 0.5});
    const double t = bench::time_best_of(
        reps, [&] { plan.forward(std::span<xf::Cx<double>>(a)); });
    rep.add_timing("dwt_fwd/n=2^" + std::to_string(log_n), t,
                   static_cast<double>(plan.n()));
    table.add_row({"dwt fwd " + std::to_string(log_n), "-",
                   bench::fmt_time(t), "-"});
  }

  // Hardware-model modular multipliers (dependent-chain latency).
  const u64 qv = (u64{1} << 36) - (u64{1} << 18) + 1;
  constexpr int kChain = 1 << 18;
  auto chain = [&](auto& mm, const char* name) {
    std::mt19937_64 rng(3);
    u64 a = rng() % qv;
    const u64 b = rng() % qv;
    const double t = bench::time_best_of(reps, [&] {
      for (int i = 0; i < kChain; ++i) a = mm.mul(a, b) | 1;
    });
    rep.add_timing(std::string("hw_modmul/") + name, t,
                   static_cast<double>(kChain));
    table.add_row({std::string("hw modmul ") + name, "-",
                   bench::fmt_time(t / kChain), "-"});
  };
  rns::BarrettHwModMul barrett(qv);
  rns::MontgomeryHwModMul mont(qv, 44);
  rns::NttFriendlyMontgomeryHwModMul ntt_mont(qv, 44);
  chain(barrett, "barrett");
  chain(mont, "montgomery");
  chain(ntt_mont, "ntt_montgomery");

  // ChaCha20 expansion.
  {
    prng::ChaCha20 rng({1, 2, 3}, 0);
    std::vector<u8> buf(4096);
    const double t = bench::time_best_of(reps, [&] { rng.fill_bytes(buf); });
    rep.add_timing("chacha20_expand_4096B", t,
                   static_cast<double>(buf.size()));
    table.add_row({"chacha20 4096B", "-", bench::fmt_time(t), "-"});
  }

  // End-to-end encode+encrypt (reduced-depth; full numbers come from
  // bench_fig5a_latency).
  if (!quick) {
    auto ctx =
        ckks::CkksContext::create(ckks::CkksParams::sweep_point(14, 8));
    ckks::CkksEncoder encoder(ctx);
    ckks::KeyGenerator keygen(ctx);
    const ckks::SecretKey sk = keygen.secret_key();
    ckks::Encryptor enc(ctx, sk);
    std::vector<std::complex<double>> msg(encoder.slots(), {0.5, -0.25});
    const double t = bench::time_best_of(reps, [&] {
      ckks::Ciphertext ct = enc.encrypt(encoder.encode(msg, 8));
      if (ct.components.empty()) std::abort();
    });
    rep.add_timing("encode_encrypt/n=2^14/limbs=8", t, 1.0);
    table.add_row({"encode+encrypt 2^14x8", "-", bench::fmt_time(t), "-"});
  }
}

}  // namespace

int main(int argc, char** argv) {
  const bench::BenchArgs args = bench::BenchArgs::parse(argc, argv);
  const int reps = args.reps > 0 ? args.reps : (args.quick ? 2 : 5);

  const std::vector<simd::KernelArch> arches = bench_arches(args.arch);

  std::printf("ABC-FHE reproduction :: kernel microbenchmarks\n");
  std::printf("Kernel arch: %s (AVX2 %s, AVX-512/IFMA %s; "
              "ABC_FORCE_PORTABLE_KERNELS=1 forces portable, "
              "ABC_DISABLE_AVX512_KERNELS=1 caps at AVX2)\n",
              simd::kernel_arch_name(simd::active_kernel_arch()),
              simd::avx2_supported() ? "available" : "unavailable",
              simd::avx512ifma_supported() ? "available" : "unavailable");
  if (!args.arch.empty()) {
    std::printf("Benching arch tier: %s (--arch)\n", args.arch.c_str());
  }
  std::printf("\n");

  bench::JsonReporter rep("bench_kernels");
  rep.add_metric("meta/avx2_supported", "value",
                 simd::avx2_supported() ? 1.0 : 0.0);
  rep.add_metric("meta/avx512ifma_supported", "value",
                 simd::avx512ifma_supported() ? 1.0 : 0.0);

  TextTable table("Kernel timings (best of " + std::to_string(reps) +
                  " reps; speed-up vs seed/unfused where applicable)");
  table.set_header({"Kernel", "Variant", "Time", "Speed-up"});

  bench_ntt(rep, table, reps, args.quick, arches);
  bench_dyadic(rep, table, reps, arches);
  bench_fused(rep, table, reps, arches);
  bench_misc(rep, table, reps, args.quick);

  table.print();

  if (!args.json_path.empty()) {
    if (!rep.write(args.json_path)) return 1;
    std::printf("\nJSON results written to %s\n", args.json_path.c_str());
  }
  return 0;
}
