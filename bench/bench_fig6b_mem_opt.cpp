// Reproduces Fig. 6(b): execution time across polynomial degrees for the
// three operand-placement configurations:
//   ABC-FHE_Base   — twiddles, masks, errors and keys fetched from DRAM;
//   ABC-FHE_TF_Gen — twiddles generated on chip, randomness from DRAM;
//   ABC-FHE_All    — unified OTF TF Gen + PRNG generate everything on chip.
// Paper: 8.2-9.3x latency reduction Base -> All.

#include <cstdio>

#include "common/table.hpp"
#include "core/simulator.hpp"

int main() {
  using namespace abc;
  std::puts("ABC-FHE reproduction :: Fig. 6b (on-chip generation ablation)\n");

  TextTable table("Encode+encrypt time (ms) vs polynomial degree");
  table.set_header({"N", "Base", "TF_Gen", "All", "Base/All speed-up"});

  for (int log_n : {13, 14, 15, 16}) {
    auto time_of = [&](bool tf_on_chip, bool prng_on_chip) {
      core::ArchConfig cfg = core::ArchConfig::paper_default();
      cfg.log_n = log_n;
      cfg.enc_profile = core::EncryptProfile::public_key();
      cfg.placement.twiddles_on_chip = tf_on_chip;
      cfg.placement.randomness_on_chip = prng_on_chip;
      return core::AbcFheSimulator(cfg).encode_encrypt_ms();
    };
    const double base = time_of(false, false);
    const double tf_gen = time_of(true, false);
    const double all = time_of(true, true);
    table.add_row({"2^" + std::to_string(log_n), TextTable::fmt(base, 3),
                   TextTable::fmt(tf_gen, 3), TextTable::fmt(all, 3),
                   TextTable::fmt(base / all, 2) + "x"});
  }
  table.print();
  std::puts("\nPaper reports 8.2-9.3x Base -> All across degrees; the");
  std::puts("mechanism is concurrent operand streams oversubscribing LPDDR5.");
  return 0;
}
