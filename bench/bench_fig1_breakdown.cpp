// Reproduces Fig. 1: execution-time breakdown of client-side vs
// server-side work for one ResNet-20 inference under FHE, across three
// stacks:
//   (1) CPU client + CPU server        — evaluation dominates (99.9%),
//   (2) SOTA client [34] + Trinity [9] — client dominates (69.4% / 30.6%),
//   (3) ABC-FHE client + Trinity [9]   — client share collapses (~12.8%).
// Client times are measured (CPU) / simulated (ABC-FHE); server times use
// the Fig. 1-calibrated Trinity model (see prior_work.hpp).

#include <cstdio>

#include "baseline/cpu_reference.hpp"
#include "baseline/prior_work.hpp"
#include "common/table.hpp"
#include "core/simulator.hpp"

int main() {
  using namespace abc;
  std::puts("ABC-FHE reproduction :: Fig. 1 (client/server breakdown, ResNet-20)\n");

  // Client-side cost per inference: one encode+encrypt (input image) and
  // one decode+decrypt (logits), N = 2^16.
  ckks::CkksParams params = ckks::CkksParams::bootstrappable();
  baseline::CpuClientPipeline cpu(params, ckks::EncryptMode::kPublicKey,
                                  params.num_limbs, 2);
  const baseline::CpuMeasurement m = cpu.measure(1);
  const double cpu_client = m.encode_encrypt_ms + m.decode_decrypt_ms;

  core::ArchConfig cfg = core::ArchConfig::paper_default();
  cfg.enc_profile = core::EncryptProfile::public_key();
  core::AbcFheSimulator sim(cfg);
  const double abc_client = sim.encode_encrypt_ms() + sim.decode_decrypt_ms();

  const auto sota = baseline::sota_client_accelerator(
      sim.encode_encrypt_ms(), sim.decode_decrypt_ms());
  const double sota_client =
      sota.encode_encrypt_ms + sota.decode_decrypt_ms;

  const double trinity = baseline::trinity_resnet20_server_ms(sota_client);
  const double cpu_server = baseline::cpu_resnet20_server_ms(trinity);

  TextTable table("End-to-end breakdown per inference");
  table.set_header({"Stack", "Client (ms)", "Server (ms)", "Client share",
                    "Paper"});
  auto row = [&](const char* name, double client, double server,
                 const char* paper_share) {
    table.add_row({name, TextTable::fmt_eng(client),
                   TextTable::fmt_eng(server),
                   TextTable::fmt(100.0 * client / (client + server), 1) + "%",
                   paper_share});
  };
  row("CPU client + CPU server (dual Xeon)", cpu_client, cpu_server,
      "server evals ~99.9% of time");
  row("SOTA client [34] + Trinity [9]", sota_client, trinity,
      "client 69.4% / server 30.6%");
  row("ABC-FHE + Trinity [9]", abc_client, trinity, "client ~12.8%");
  table.print();

  const double share34 = 100.0 * sota_client / (sota_client + trinity);
  const double share_abc = 100.0 * abc_client / (abc_client + trinity);
  std::printf(
      "\nShape check: accelerating the server flips the bottleneck to the\n"
      "client (%.1f%% with [34]); ABC-FHE collapses the client share to\n"
      "%.1f%% (paper: 12.8%%; our simulated ABC-FHE is faster relative to\n"
      "[34] than the paper's silicon, so the share drops further).\n",
      share34, share_abc);
  return 0;
}
