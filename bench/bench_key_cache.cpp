// Key-cache bench: the memory-vs-throughput story of on-demand rotation-
// key regeneration. Three headline numbers, all recorded to JSON:
//
//   * resident key bytes at N tenants — seed-compressed registry records
//     vs the old eager scheme (every key-switch key expanded per tenant),
//     plus the bounded shared cache slice that replaces the difference;
//   * warm-cache rotation throughput vs eager expanded keys (the within-
//     10% acceptance gate: a cache hit is a pointer chase + pin);
//   * a capacity sweep at N tenants from thrash (1 byte) to the full
//     working set: rotations/s, hit/miss/eviction counts and resident
//     bytes per configuration.
//
//   bench_key_cache [--quick] [--reps N] [--json out.json]

#include <complex>
#include <cstdio>
#include <random>
#include <string>
#include <vector>

#include "bench_util.hpp"
#include "ckks/evaluator.hpp"
#include "engine/batch_evaluator.hpp"
#include "engine/client_session.hpp"
#include "server/key_cache.hpp"

namespace {

using abc::u64;
using abc::u8;
using abc::server::KeyCache;
using abc::server::TenantKeySource;

std::vector<std::vector<std::complex<double>>> random_batch(
    std::size_t batch, std::size_t slots, u64 seed) {
  std::mt19937_64 rng(seed);
  std::uniform_real_distribution<double> dist(-1.0, 1.0);
  std::vector<std::vector<std::complex<double>>> msgs(batch);
  for (auto& m : msgs) {
    m.resize(slots);
    for (auto& z : m) z = {dist(rng), dist(rng)};
  }
  return msgs;
}

}  // namespace

int main(int argc, char** argv) {
  const abc::bench::BenchArgs args = abc::bench::BenchArgs::parse(argc, argv);
  const int reps = args.reps > 0 ? args.reps : (args.quick ? 1 : 3);
  const std::size_t tenants = args.quick ? 8 : 64;
  constexpr int kRotations = 8;  // registered steps per tenant: 1..8
  const std::size_t warm_iters = args.quick ? 8 : 32;

  abc::bench::JsonReporter reporter("bench_key_cache");
  const abc::ckks::CkksParams params = abc::ckks::CkksParams::test_small(10, 3);

  // One client's key bundle, registered under every tenant id: cache keys
  // are (tenant, element), so tenants never share cache entries and the
  // byte accounting matches N independent clients exactly.
  auto client_ctx = abc::ckks::CkksContext::create(params);
  std::vector<int> steps(kRotations);
  for (int i = 0; i < kRotations; ++i) steps[static_cast<std::size_t>(i)] = i + 1;
  abc::engine::ClientSession client(client_ctx,
                                    abc::engine::SessionConfig{steps});
  const abc::engine::KeyBundle& kb = client.key_bundle();
  const abc::ckks::KeyBundleFrames frames{kb.public_key, kb.relin_key,
                                          kb.galois_keys};

  auto ctx = abc::ckks::CkksContext::create(params);
  std::vector<abc::server::TenantSession> sessions;
  sessions.reserve(tenants);
  for (std::size_t t = 0; t < tenants; ++t) {
    sessions.push_back(abc::server::parse_tenant_bundle(ctx, frames));
    sessions.back().id = t + 1;
  }
  const abc::server::TenantSession& s0 = sessions.front();

  // -- resident key memory ----------------------------------------------------
  const std::size_t compressed_per_tenant = s0.compressed_key_bytes();
  const std::size_t eager_per_tenant = s0.expanded_key_bytes();
  // Actual bytes one *cached* expanded key occupies (stored digits only).
  const std::size_t cached_key_bytes = 2 *
                                       static_cast<std::size_t>(
                                           s0.rlk.stored_digits) *
                                       s0.rlk.limbs * ctx->n() * sizeof(u64);
  const std::size_t working_set =
      tenants * (kRotations + 1) * cached_key_bytes;
  const double per_tenant_ratio = static_cast<double>(eager_per_tenant) /
                                  static_cast<double>(compressed_per_tenant);
  std::printf("key cache (n=%zu, L=%zu, %zu tenants x %d rotation keys)\n",
              ctx->n(), ctx->max_limbs(), tenants, kRotations);
  std::printf("  per tenant: compressed %zu B vs eager %zu B  (%.2fx)\n",
              compressed_per_tenant, eager_per_tenant, per_tenant_ratio);
  std::printf("  at %zu tenants: %zu KiB registry vs %zu KiB eager\n",
              tenants, tenants * compressed_per_tenant / 1024,
              tenants * eager_per_tenant / 1024);
  {
    abc::bench::BenchResult r;
    r.name = "resident_key_bytes";
    r.metrics.emplace_back("tenants", static_cast<double>(tenants));
    r.metrics.emplace_back("keys_per_tenant",
                           static_cast<double>(kRotations + 1));
    r.metrics.emplace_back("compressed_bytes_per_tenant",
                           static_cast<double>(compressed_per_tenant));
    r.metrics.emplace_back("eager_bytes_per_tenant",
                           static_cast<double>(eager_per_tenant));
    r.metrics.emplace_back("registry_bytes_total",
                           static_cast<double>(tenants *
                                               compressed_per_tenant));
    r.metrics.emplace_back("eager_bytes_total",
                           static_cast<double>(tenants * eager_per_tenant));
    r.metrics.emplace_back("reduction_ratio", per_tenant_ratio);
    r.metrics.emplace_back("cached_key_bytes",
                           static_cast<double>(cached_key_bytes));
    r.metrics.emplace_back("working_set_bytes",
                           static_cast<double>(working_set));
    reporter.add_record(std::move(r));
  }

  // -- warm cache vs eager throughput -----------------------------------------
  const auto msgs = random_batch(4, client_ctx->slots(), 7);
  const std::vector<u8> upload =
      client.upload(msgs, client_ctx->max_limbs() - 1);
  const auto cts = abc::ckks::deserialize_ciphertext_batch(ctx, upload);
  abc::engine::BatchEvaluator eval(ctx);

  const abc::ckks::GaloisKeys eager_gks = s0.expand_gks();
  const double eager_s = abc::bench::time_best_of(reps, [&] {
    for (std::size_t i = 0; i < warm_iters; ++i) {
      (void)eval.rotate_batch(cts, 1 + static_cast<int>(i % kRotations),
                              eager_gks);
    }
  });

  KeyCache warm_cache(working_set);
  const TenantKeySource warm_src(warm_cache, s0);
  for (int st = 1; st <= kRotations; ++st) {  // prefill: misses paid here
    (void)warm_src.galois_key(st);
  }
  const double warm_s = abc::bench::time_best_of(reps, [&] {
    for (std::size_t i = 0; i < warm_iters; ++i) {
      (void)eval.rotate_batch(cts, 1 + static_cast<int>(i % kRotations),
                              warm_src);
    }
  });

  KeyCache thrash_cache(1);
  const TenantKeySource thrash_src(thrash_cache, s0);
  const double thrash_s = abc::bench::time_best_of(reps, [&] {
    for (std::size_t i = 0; i < warm_iters; ++i) {
      (void)eval.rotate_batch(cts, 1 + static_cast<int>(i % kRotations),
                              thrash_src);
    }
  });

  const double items = static_cast<double>(warm_iters * cts.size());
  const double warm_over_eager = eager_s / warm_s;  // >= 0.9 is the gate
  std::printf("  rotate throughput: eager %.0f cts/s, warm cache %.0f cts/s "
              "(%.3fx), thrash %.0f cts/s\n",
              items / eager_s, items / warm_s, warm_over_eager,
              items / thrash_s);
  {
    abc::bench::BenchResult r;
    r.name = "rotate_throughput";
    r.metrics.emplace_back("eager_cts_per_s", items / eager_s);
    r.metrics.emplace_back("warm_cache_cts_per_s", items / warm_s);
    r.metrics.emplace_back("thrash_cts_per_s", items / thrash_s);
    r.metrics.emplace_back("warm_over_eager", warm_over_eager);
    reporter.add_record(std::move(r));
  }

  // -- capacity sweep at N tenants --------------------------------------------
  // Round-robin over every (tenant, step) pair: the adversarial pattern
  // for an LRU bounded below the working set.
  const auto ct_one = std::vector<abc::ckks::Ciphertext>{cts[0]};
  struct Cap {
    const char* name;
    std::size_t bytes;
  };
  const Cap caps[] = {
      {"thrash_1B", 1},
      {"four_keys", 4 * cached_key_bytes},
      {"quarter_ws", working_set / 4},
      {"full_ws", working_set},
  };
  for (const Cap& cap : caps) {
    KeyCache cache(cap.bytes);
    std::size_t rotations = 0;
    const double seconds = abc::bench::time_best_of(reps, [&] {
      rotations = 0;
      for (int round = 0; round < 2; ++round) {
        for (const auto& session : sessions) {
          const TenantKeySource src(cache, session);
          for (int st = 1; st <= kRotations; ++st) {
            (void)eval.rotate_batch(ct_one, st, src);
            ++rotations;
          }
        }
      }
    });
    const KeyCache::Stats st = cache.stats();
    const double rps = static_cast<double>(rotations) / seconds;
    std::printf("  capacity %-10s %10zu B: %8.1f rot/s  hits %llu  "
                "misses %llu  evictions %llu  resident %zu B\n",
                cap.name, cap.bytes, rps,
                static_cast<unsigned long long>(st.hits),
                static_cast<unsigned long long>(st.misses),
                static_cast<unsigned long long>(st.evictions),
                st.resident_bytes);
    abc::bench::BenchResult r;
    r.name = std::string("capacity_sweep_") + cap.name;
    r.labels.emplace_back("capacity", cap.name);
    r.metrics.emplace_back("capacity_bytes", static_cast<double>(cap.bytes));
    r.metrics.emplace_back("tenants", static_cast<double>(tenants));
    r.metrics.emplace_back("rotations_per_s", rps);
    r.metrics.emplace_back("hits", static_cast<double>(st.hits));
    r.metrics.emplace_back("misses", static_cast<double>(st.misses));
    r.metrics.emplace_back("evictions", static_cast<double>(st.evictions));
    r.metrics.emplace_back("resident_bytes",
                           static_cast<double>(st.resident_bytes));
    reporter.add_record(std::move(r));
  }

  if (!args.json_path.empty() && !reporter.write(args.json_path)) {
    std::fprintf(stderr, "failed to write %s\n", args.json_path.c_str());
    return 1;
  }
  return 0;
}
