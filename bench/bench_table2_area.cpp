// Reproduces Table II: area and power breakdown of ABC-FHE at 28nm,
// composed bottom-up from the Table I-calibrated unit library, plus the
// Sec. V-A 7nm projection.

#include <cstdio>

#include "common/table.hpp"
#include "core/area_model.hpp"
#include "core/tech_scale.hpp"

int main() {
  using namespace abc;
  std::puts("ABC-FHE reproduction :: Table II (area & power breakdown)\n");

  const core::TechConstants tc = core::calibrate_28nm();
  const core::ArchConfig cfg = core::ArchConfig::paper_default();
  const core::AreaPowerBreakdown bd = core::abc_fhe_breakdown(cfg, tc);

  // Paper values for side-by-side comparison.
  struct PaperRow {
    const char* name;
    double area;
    double power;
  };
  const PaperRow paper[] = {
      {"4x PNL", 10.717, 1.397},
      {"Unified OTF TF Gen", 0.697, 0.089},
      {"Twiddle Factor Seed Memory", 0.046, 0.022},
      {"MSE", 0.787, 0.298},
      {"PRNG", 0.069, 0.028},
      {"Local Scratchpad", 0.658, 0.323},
      {"RSC", 12.973, 2.156},
      {"2x RSC", 25.946, 4.313},
      {"Global Scratchpad", 2.632, 1.290},
      {"Top CTRL, DMA, Etc.", 0.060, 0.051},
  };

  TextTable table("Table II: Area and power breakdown of ABC-FHE (28nm)");
  table.set_header({"Component", "Area (mm^2)", "Paper", "Power (W)",
                    "Paper"});
  for (const PaperRow& row : paper) {
    const auto& e = bd.find(row.name);
    table.add_row({row.name, TextTable::fmt(e.area_mm2, 3),
                   TextTable::fmt(row.area, 3), TextTable::fmt(e.power_w, 3),
                   TextTable::fmt(row.power, 3)});
  }
  table.add_row({"Total", TextTable::fmt(bd.total_area_mm2(), 3),
                 TextTable::fmt(28.638, 3),
                 TextTable::fmt(bd.total_power_w(), 3),
                 TextTable::fmt(5.654, 3)});
  table.print();

  const double a7 = core::scale_area_mm2(bd.total_area_mm2(),
                                         core::TechNode::k7);
  const double p7 = core::scale_power_w(bd.total_power_w(),
                                        core::TechNode::k7);
  std::printf(
      "\n7nm projection (DeepScaleTool-style factors): %.2f mm^2, %.2f W "
      "(paper: ~0.9 mm^2, ~2.1 W; see EXPERIMENTS.md E6 for the area-factor "
      "discussion)\n",
      a7, p7);
  return 0;
}
