// Client decrypt/verify throughput: wall time of batched decode+decrypt
// and batched verify_decode under the ScalarBackend vs. the
// ThreadPoolBackend at increasing worker counts — the download half of
// the client round trip (Fig. 2a "Decoding + Decrypt"), mirroring
// bench_engine_throughput on the upload half.
//
// A serving client decrypts every response it receives, so this path runs
// as often as encryption; the verify mode adds the per-slot precision
// check a client gates on before trusting a server result.
//
// Usage: bench_decrypt_throughput [log_n] [limbs] [batch]
//                                 [--json out.json] [--reps N] [--quick]
//   defaults: log_n=13, limbs=8, batch=32 (keeps the run in seconds;
//   pass 16 24 for the paper's bootstrappable point). --quick drops to
//   minimal reps for the CI smoke; --json emits the bench_util.hpp schema.

#include <complex>
#include <cstdio>
#include <cstdlib>
#include <memory>
#include <random>
#include <vector>

#include "backend/scalar_backend.hpp"
#include "backend/thread_pool_backend.hpp"
#include "bench_util.hpp"
#include "common/table.hpp"
#include "engine/batch_decryptor.hpp"
#include "engine/batch_encryptor.hpp"

namespace {

using namespace abc;

struct DecryptTimes {
  double decrypt_s = 0.0;  // decrypt_decode_batch
  double verify_s = 0.0;   // verify_batch
};

DecryptTimes measure(const ckks::CkksParams& params,
                     std::shared_ptr<backend::PolyBackend> backend,
                     std::size_t batch, int reps) {
  auto ctx = ckks::CkksContext::create(params, std::move(backend));
  ckks::KeyGenerator keygen(ctx);
  const ckks::SecretKey sk = keygen.secret_key();

  std::mt19937_64 rng(42);
  std::uniform_real_distribution<double> dist(-1.0, 1.0);
  std::vector<std::vector<std::complex<double>>> msgs(batch);
  for (auto& m : msgs) {
    m.resize(ctx->slots());
    for (auto& z : m) z = {dist(rng), dist(rng)};
  }
  engine::BatchEncryptor enc(ctx, sk);
  const std::vector<ckks::Ciphertext> cts =
      enc.encrypt_batch(msgs, ctx->max_limbs());

  engine::BatchDecryptor dec(ctx, sk);
  DecryptTimes t;
  t.decrypt_s = bench::time_best_of(
      reps, [&] { (void)dec.decrypt_decode_batch(cts); });
  t.verify_s =
      bench::time_best_of(reps, [&] { (void)dec.verify_batch(cts, msgs); });
  return t;
}

}  // namespace

int main(int argc, char** argv) {
  const bench::BenchArgs args = bench::BenchArgs::parse(argc, argv);
  auto positional = [&](std::size_t i, int def) {
    return i < args.positional.size() ? std::atoi(args.positional[i].c_str())
                                      : def;
  };
  const int log_n = positional(0, 13);
  const auto limbs = static_cast<std::size_t>(positional(1, 8));
  const auto batch = static_cast<std::size_t>(positional(2, 32));
  const int reps = args.reps > 0 ? args.reps : (args.quick ? 1 : 3);

  std::puts("ABC-FHE reproduction :: client decrypt/verify throughput\n");
  std::printf("Workload: N = 2^%d, %zu limbs; batch of %zu ciphertexts, "
              "decode+decrypt and verify_decode.\n\n",
              log_n, limbs, batch);

  ckks::CkksParams params = ckks::CkksParams::sweep_point(log_n, limbs);
  params.validate();

  bench::JsonReporter rep("bench_decrypt_throughput");
  rep.add_metric("meta/log_n", "value", log_n);
  rep.add_metric("meta/limbs", "value", static_cast<double>(limbs));
  rep.add_metric("meta/batch", "value", static_cast<double>(batch));

  TextTable table("Batched decrypt/verify wall time (" +
                  std::to_string(batch) + " ciphertexts)");
  table.set_header({"Backend", "Workers", "decrypt+decode", "verify", "ct/s",
                    "speed-up"});

  const DecryptTimes scalar = measure(
      params, std::make_shared<backend::ScalarBackend>(), batch, reps);
  rep.add_timing("decrypt/scalar/decode_decrypt", scalar.decrypt_s,
                 static_cast<double>(batch));
  rep.add_timing("decrypt/scalar/verify", scalar.verify_s,
                 static_cast<double>(batch));
  table.add_row({"scalar", "1", bench::fmt_time(scalar.decrypt_s),
                 bench::fmt_time(scalar.verify_s),
                 TextTable::fmt(static_cast<double>(batch) / scalar.decrypt_s,
                                1),
                 "1.00x"});

  for (std::size_t threads : {1u, 2u, 4u, 8u}) {
    const DecryptTimes t = measure(
        params, std::make_shared<backend::ThreadPoolBackend>(threads), batch,
        reps);
    const std::string prefix =
        "decrypt/thread_pool/" + std::to_string(threads);
    rep.add_timing(prefix + "/decode_decrypt", t.decrypt_s,
                   static_cast<double>(batch));
    rep.add_timing(prefix + "/verify", t.verify_s,
                   static_cast<double>(batch));
    table.add_row({"thread_pool", std::to_string(threads),
                   bench::fmt_time(t.decrypt_s), bench::fmt_time(t.verify_s),
                   TextTable::fmt(static_cast<double>(batch) / t.decrypt_s, 1),
                   TextTable::fmt(scalar.decrypt_s / t.decrypt_s, 2) + "x"});
  }
  table.print();

  if (!args.json_path.empty()) {
    if (!rep.write(args.json_path)) return 1;
    std::printf("\nJSON results written to %s\n", args.json_path.c_str());
  }
  return 0;
}
