// Reproduces Fig. 4: (a) the merged-twiddle multiplication counts on the
// signal-flow graph, and (b) the distribution of multiplier instances
// across pipelined NTT/FFT design configurations, with the canonical
// radix-2 / radix-2^2 / radix-2^3 / radix-2^n design points.

#include <algorithm>
#include <cstdio>

#include "common/table.hpp"
#include "core/design_space.hpp"

namespace {

using namespace abc;
using core::TransformKind;

void histogram(TransformKind kind, int log_n, int lanes) {
  const auto configs = core::enumerate_radix_configs(log_n, 3);
  std::vector<double> counts;
  counts.reserve(configs.size());
  double max_count = 0;
  for (const auto& cfg : configs) {
    const double m = core::multiplier_instances(cfg, kind, log_n, lanes);
    counts.push_back(m);
    max_count = std::max(max_count, m);
  }
  const double minimum = core::multiplier_instances(
      core::radix2n_config(log_n), kind, log_n, lanes);

  TextTable table(std::string("Fig. 4b (") +
                  (kind == TransformKind::kNtt ? "NTT" : "FFT") +
                  "): design distribution, N = 2^" + std::to_string(log_n) +
                  ", P = " + std::to_string(lanes));
  table.set_header({"Norm. multipliers", "Designs", "Share"});
  constexpr int kBins = 10;
  for (int b = 0; b < kBins; ++b) {
    const double lo = minimum + (max_count - minimum) * b / kBins;
    const double hi = minimum + (max_count - minimum) * (b + 1) / kBins;
    int in_bin = 0;
    for (double c : counts) {
      if (c >= lo - 1e-9 && (c < hi || (b == kBins - 1 && c <= hi + 1e-9))) {
        ++in_bin;
      }
    }
    table.add_row({TextTable::fmt(lo / max_count, 2) + " - " +
                       TextTable::fmt(hi / max_count, 2),
                   std::to_string(in_bin),
                   TextTable::fmt(100.0 * in_bin / counts.size(), 1) + "%"});
  }
  table.print();
  std::puts("");
}

}  // namespace

int main() {
  std::puts("ABC-FHE reproduction :: Fig. 4 (multiplier design space)\n");

  constexpr int lanes = 8;  // P = 8 MDC backbone
  TextTable named("Canonical design points (NTT, P = 8)");
  named.set_header({"N", "radix-2", "radix-2^2", "radix-2^3", "radix-2^n",
                    "2^n vs 2", "2^n vs 2^2"});
  for (int log_n : {14, 15, 16}) {
    const double r2 = core::multiplier_instances(
        core::radix2_config(log_n), TransformKind::kNtt, log_n, lanes);
    const double r4 = core::multiplier_instances(
        core::radix4_config(log_n), TransformKind::kNtt, log_n, lanes);
    const double r8 = core::multiplier_instances(
        core::radix8_config(log_n), TransformKind::kNtt, log_n, lanes);
    const double r2n = core::multiplier_instances(
        core::radix2n_config(log_n), TransformKind::kNtt, log_n, lanes);
    named.add_row({"2^" + std::to_string(log_n), TextTable::fmt(r2, 0),
                   TextTable::fmt(r4, 0), TextTable::fmt(r8, 0),
                   TextTable::fmt(r2n, 0),
                   "-" + TextTable::fmt(100 * (1 - r2n / r2), 1) + "%",
                   "-" + TextTable::fmt(100 * (1 - r2n / r4), 1) + "%"});
  }
  named.print();
  std::puts(
      "\nPaper: radix-2^n reduces multipliers by 29.7% vs radix-2 and 22.3% "
      "vs radix-2^2 (NTT).\n");

  histogram(TransformKind::kNtt, 16, lanes);
  histogram(TransformKind::kFft, 16, lanes);

  // Fig. 4a: SFG multiplication counts with/without twiddle merging on the
  // 8-point example (13 vs 12 in the paper).
  std::puts("Fig. 4a check (8-point SFG): unmerged radix-2 needs");
  std::puts("(N/2)*log2(N) + 1 = 13 multiplications (pre-processing kept");
  std::puts("separate); merged radix-2^n needs (N/2)*log2(N) = 12.");
  return 0;
}
