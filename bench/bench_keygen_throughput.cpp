// Client key-generation throughput: wall time of the full on-device key
// set (secret + public + relinearization + Galois keys) under the
// ScalarBackend vs. the ThreadPoolBackend at increasing worker counts,
// plus the wire sizes a client uploads in seed-compressed vs. full form.
//
// This is the second half of the paper's client workload (Sec. IV,
// Fig. 5a): encode+encrypt is batched traffic, but a session starts with
// keygen — and at bootstrappable parameters the switching-key material
// dominates upload bytes (the BTS/ARK memory-traffic story), which is why
// shipping only the b halves + stream ids matters.
//
// Usage: bench_keygen_throughput [log_n] [limbs] [rotations]
//                                [--json out.json] [--reps N] [--quick]
//   defaults: log_n=13, limbs=8, rotations=4 (keeps the run in seconds;
//   pass 16 24 for the paper's bootstrappable point). --quick drops to
//   minimal reps for the CI smoke; --json emits the bench_util.hpp schema.

#include <cstdio>
#include <cstdlib>
#include <memory>
#include <numeric>
#include <vector>

#include "backend/scalar_backend.hpp"
#include "backend/thread_pool_backend.hpp"
#include "bench_util.hpp"
#include "ckks/serialize.hpp"
#include "common/table.hpp"
#include "engine/batch_keygen.hpp"

namespace {

using namespace abc;

struct KeygenTimes {
  double secret_public_s = 0.0;
  double relin_s = 0.0;
  double galois_s = 0.0;  // all rotation steps together
};

KeygenTimes measure(const ckks::CkksParams& params,
                    std::shared_ptr<backend::PolyBackend> backend,
                    const std::vector<int>& steps, int reps) {
  auto ctx = ckks::CkksContext::create(params, std::move(backend));
  KeygenTimes t;
  t.secret_public_s = bench::time_best_of(reps, [&] {
    ckks::KeyGenerator keygen(ctx);
    const ckks::SecretKey sk = keygen.secret_key();
    (void)keygen.public_key(sk);
  });
  ckks::KeyGenerator keygen(ctx);
  const ckks::SecretKey sk = keygen.secret_key();
  engine::BatchKeyGenerator eng(ctx, sk);
  t.relin_s = bench::time_best_of(reps, [&] { (void)eng.relin_key(); });
  t.galois_s = bench::time_best_of(reps, [&] { (void)eng.galois_keys(steps); });
  return t;
}

}  // namespace

int main(int argc, char** argv) {
  const bench::BenchArgs args = bench::BenchArgs::parse(argc, argv);
  auto positional = [&](std::size_t i, int def) {
    return i < args.positional.size() ? std::atoi(args.positional[i].c_str())
                                      : def;
  };
  const int log_n = positional(0, 13);
  const auto limbs = static_cast<std::size_t>(positional(1, 8));
  const int rotations = positional(2, 4);
  const int reps = args.reps > 0 ? args.reps : (args.quick ? 1 : 3);

  std::vector<int> steps(static_cast<std::size_t>(rotations));
  for (int i = 0; i < rotations; ++i) steps[static_cast<std::size_t>(i)] = 1 << i;

  std::puts("ABC-FHE reproduction :: client key-generation throughput\n");
  std::printf("Workload: N = 2^%d, %zu limbs; secret + public + relin (%zu "
              "digits) + %d Galois keys.\n\n",
              log_n, limbs, limbs, rotations);

  ckks::CkksParams params = ckks::CkksParams::sweep_point(log_n, limbs);
  params.validate();

  bench::JsonReporter rep("bench_keygen_throughput");
  rep.add_metric("meta/log_n", "value", log_n);
  rep.add_metric("meta/limbs", "value", static_cast<double>(limbs));
  rep.add_metric("meta/rotations", "value", rotations);

  TextTable table("Key-generation wall time (full client key set)");
  table.set_header({"Backend", "Workers", "sk+pk", "relin", "galois x" +
                    std::to_string(rotations), "total", "speed-up"});

  const KeygenTimes scalar = measure(
      params, std::make_shared<backend::ScalarBackend>(), steps, reps);
  const double scalar_total =
      scalar.secret_public_s + scalar.relin_s + scalar.galois_s;
  rep.add_timing("keygen/scalar/secret_public", scalar.secret_public_s);
  rep.add_timing("keygen/scalar/relin", scalar.relin_s);
  rep.add_timing("keygen/scalar/galois", scalar.galois_s,
                 static_cast<double>(rotations));
  table.add_row({"scalar", "1", bench::fmt_time(scalar.secret_public_s),
                 bench::fmt_time(scalar.relin_s),
                 bench::fmt_time(scalar.galois_s),
                 bench::fmt_time(scalar_total), "1.00x"});

  for (std::size_t threads : {1u, 2u, 4u, 8u}) {
    const KeygenTimes t = measure(
        params, std::make_shared<backend::ThreadPoolBackend>(threads), steps,
        reps);
    const double total = t.secret_public_s + t.relin_s + t.galois_s;
    const std::string prefix =
        "keygen/thread_pool/" + std::to_string(threads);
    rep.add_timing(prefix + "/secret_public", t.secret_public_s);
    rep.add_timing(prefix + "/relin", t.relin_s);
    rep.add_timing(prefix + "/galois", t.galois_s,
                   static_cast<double>(rotations));
    rep.add_metric(prefix + "/total", "seconds", total);
    table.add_row({"thread_pool", std::to_string(threads),
                   bench::fmt_time(t.secret_public_s),
                   bench::fmt_time(t.relin_s), bench::fmt_time(t.galois_s),
                   bench::fmt_time(total),
                   TextTable::fmt(scalar_total / total, 2) + "x"});
  }
  table.print();

  // Wire sizes: what the client uploads, seed-compressed vs. full.
  auto ctx = ckks::CkksContext::create(params);
  ckks::KeyGenerator keygen(ctx);
  const ckks::SecretKey sk = keygen.secret_key();
  const ckks::PublicKey pk = keygen.public_key(sk);
  const ckks::RelinKey rlk = keygen.relin_key(sk);
  const ckks::KeySizeReport pk_sizes = public_key_sizes(pk, 44);
  const ckks::KeySizeReport rlk_sizes = key_switch_key_sizes(rlk.key, 44);
  const double gal_compressed =
      static_cast<double>(rlk_sizes.compressed_bytes) * rotations;
  const double gal_full = static_cast<double>(rlk_sizes.full_bytes) * rotations;

  TextTable sizes("Key upload sizes at 44-bit packing (seed-compressed vs full)");
  sizes.set_header({"Key", "compressed", "full", "saved"});
  auto mb = [](double b) { return TextTable::fmt(b / 1e6, 2) + " MB"; };
  sizes.add_row({"public", mb(static_cast<double>(pk_sizes.compressed_bytes)),
                 mb(static_cast<double>(pk_sizes.full_bytes)),
                 TextTable::fmt(pk_sizes.ratio(), 2) + "x"});
  sizes.add_row({"relin", mb(static_cast<double>(rlk_sizes.compressed_bytes)),
                 mb(static_cast<double>(rlk_sizes.full_bytes)),
                 TextTable::fmt(rlk_sizes.ratio(), 2) + "x"});
  sizes.add_row({"galois x" + std::to_string(rotations), mb(gal_compressed),
                 mb(gal_full), TextTable::fmt(rlk_sizes.ratio(), 2) + "x"});
  sizes.print();
  rep.add_metric("sizes/relin_compressed", "bytes",
                 static_cast<double>(rlk_sizes.compressed_bytes));
  rep.add_metric("sizes/relin_full", "bytes",
                 static_cast<double>(rlk_sizes.full_bytes));
  rep.add_metric("sizes/public_compressed", "bytes",
                 static_cast<double>(pk_sizes.compressed_bytes));

  if (!args.json_path.empty()) {
    if (!rep.write(args.json_path)) return 1;
    std::printf("\nJSON results written to %s\n", args.json_path.c_str());
  }
  return 0;
}
