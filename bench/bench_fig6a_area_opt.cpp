// Reproduces Fig. 6(a): RFE area reduction ladder. Baseline: radix-2
// pipelined NTT with separate NTT and FFT hardware and vanilla Montgomery
// multipliers; then (1) twiddle-factor scheduling (radix-2^n merge),
// (2) NTT-friendly Montgomery multipliers, (3) full NTT/FFT
// reconfigurability. Paper: 31% total reduction.

#include <cstdio>

#include "common/table.hpp"
#include "core/design_space.hpp"

int main() {
  using namespace abc;
  std::puts("ABC-FHE reproduction :: Fig. 6a (RFE area optimization ladder)\n");

  const core::TechConstants tc = core::calibrate_28nm();
  const core::ArchConfig cfg = core::ArchConfig::paper_default();
  const core::RfeAreaLadder ladder = core::rfe_area_ladder(cfg, tc);

  TextTable table("RFE area as optimizations are applied (P=8, N=2^16)");
  table.set_header({"Configuration", "Area (mm^2)", "Relative"});
  auto rel = [&](double a) {
    return TextTable::fmt(a / ladder.baseline_mm2, 3);
  };
  table.add_row({"(1) Baseline: radix-2, separate NTT+FFT, vanilla MontMul",
                 TextTable::fmt(ladder.baseline_mm2, 3),
                 rel(ladder.baseline_mm2)});
  table.add_row({"(2) + Twiddle-factor scheduling (radix-2^n)",
                 TextTable::fmt(ladder.tf_scheduling_mm2, 3),
                 rel(ladder.tf_scheduling_mm2)});
  table.add_row({"(3) + NTT-friendly Montgomery multiplier",
                 TextTable::fmt(ladder.montmul_mm2, 3),
                 rel(ladder.montmul_mm2)});
  table.add_row({"(4) + Reconfigurable shared NTT/FFT engine",
                 TextTable::fmt(ladder.reconfigurable_mm2, 3),
                 rel(ladder.reconfigurable_mm2)});
  table.print();

  std::printf("\nTotal reduction: %.1f%% (paper: 31%%)\n",
              100.0 * ladder.total_reduction());
  return 0;
}
