// Serving-daemon saturation bench: offered-load throughput (requests/s)
// of engine::Server at increasing per-core worker counts, plus
// closed-loop request latency percentiles. The scaling headline —
// requests/s at 4 workers over 1 — only shows on a multi-core host; on a
// single hardware thread the worker sweep degenerates to timeslicing and
// the numbers report that honestly.
//
//   bench_server_saturation [--quick] [--reps N] [--json out.json]
//
// JSON records: one per (op, workers) with requests_per_s, one latency
// record per op with p50/p99 seconds, speedup_4w_<op> scalars, and one
// histogram_layout record pinning the shared log2 bucket boundaries so
// latency numbers stay comparable across PRs.
//
// Latency percentiles come from the same obs::Histogram implementation
// the daemon's server.request_ns metric uses (one instance per op); under
// ABC_NO_METRICS they read 0 and the record says metrics_enabled: 0.

#include <complex>
#include <cstdio>
#include <future>
#include <random>
#include <thread>
#include <vector>

#include "bench_util.hpp"
#include "engine/client_session.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"
#include "server/server.hpp"

namespace {

using abc::u64;
using abc::u8;
using abc::server::Op;
using abc::server::Server;
using abc::server::ServerConfig;
using abc::server::Status;

std::vector<std::vector<std::complex<double>>> random_batch(
    std::size_t batch, std::size_t slots, u64 seed) {
  std::mt19937_64 rng(seed);
  std::uniform_real_distribution<double> dist(-1.0, 1.0);
  std::vector<std::vector<std::complex<double>>> msgs(batch);
  for (auto& m : msgs) {
    m.resize(slots);
    for (auto& z : m) z = {dist(rng), dist(rng)};
  }
  return msgs;
}

abc::ckks::RequestFrame make_request(u64 tenant, u64 id, Op op,
                                     abc::i64 arg, std::vector<u8> payload) {
  abc::ckks::RequestFrame req;
  req.tenant = tenant;
  req.request_id = id;
  req.op = static_cast<u8>(op);
  req.op_arg = arg;
  req.payload = std::move(payload);
  return req;
}

}  // namespace

int main(int argc, char** argv) {
  const abc::bench::BenchArgs args = abc::bench::BenchArgs::parse(argc, argv);
  const int reps = args.reps > 0 ? args.reps : (args.quick ? 1 : 3);
  const std::size_t requests = args.quick ? 16 : 64;
  const std::size_t latency_samples = args.quick ? 12 : 64;
  std::vector<std::size_t> worker_counts = {1, 2, 4};
  if (!args.quick) worker_counts.push_back(8);

  abc::bench::JsonReporter reporter("bench_server_saturation");
  const abc::ckks::CkksParams params = abc::ckks::CkksParams::test_small(10, 3);

  // One client prepares the tenant keys and a request upload; the same
  // bytes are replayed at every worker count so every configuration does
  // identical work (and, per the soak tests, returns identical bytes).
  auto client_ctx = abc::ckks::CkksContext::create(params);
  abc::engine::ClientSession session(client_ctx,
                                     abc::engine::SessionConfig{{1}});
  const abc::engine::KeyBundle& kb = session.key_bundle();
  const abc::ckks::KeyBundleFrames frames{kb.public_key, kb.relin_key,
                                          kb.galois_keys};
  const auto msgs = random_batch(4, client_ctx->slots(), 7);
  const std::vector<u8> upload =
      session.upload(msgs, client_ctx->max_limbs() - 1);

  std::printf("server saturation (n=%zu, batch=%zu cts, %zu requests, "
              "hw threads=%u)\n",
              client_ctx->n(), msgs.size(), requests,
              std::thread::hardware_concurrency());

  struct OpCase {
    const char* name;
    Op op;
    abc::i64 arg;
  };
  const OpCase cases[] = {{"rotate", Op::kRotate, 1},
                          {"square", Op::kSquare, 0}};

  for (const OpCase& c : cases) {
    double rps_at_1 = 0.0;
    double rps_at_4 = 0.0;
    for (const std::size_t workers : worker_counts) {
      ServerConfig cfg;
      cfg.workers = workers;
      cfg.queue_capacity = std::max<std::size_t>(requests, 64);
      cfg.param_sets = {params};
      Server srv(cfg);
      const u64 tenant = srv.register_tenant(params, frames);

      const double seconds = abc::bench::time_best_of(reps, [&] {
        // Offered load from 4 feeder threads — more submitters than any
        // tested worker count, so the daemon, not the feeders, is the
        // bottleneck.
        std::vector<std::future<abc::ckks::ResponseFrame>> futures(requests);
        std::vector<std::thread> feeders;
        for (std::size_t f = 0; f < 4; ++f) {
          feeders.emplace_back([&, f] {
            for (std::size_t i = f; i < requests; i += 4) {
              futures[i] = srv.submit(
                  make_request(tenant, i, c.op, c.arg, upload));
            }
          });
        }
        for (auto& t : feeders) t.join();
        for (auto& fut : futures) {
          const abc::ckks::ResponseFrame resp = fut.get();
          if (resp.status != static_cast<u8>(Status::kOk)) {
            std::fprintf(stderr, "bench request failed: %s\n",
                         resp.error.c_str());
            std::exit(1);
          }
        }
      });
      const double rps = static_cast<double>(requests) / seconds;
      if (workers == 1) rps_at_1 = rps;
      if (workers == 4) rps_at_4 = rps;
      std::printf("  %-6s workers=%zu  %8.1f req/s  (%s total)\n", c.name,
                  workers, rps, abc::bench::fmt_time(seconds).c_str());
      abc::bench::BenchResult r;
      r.name = std::string("saturation_") + c.name;
      r.labels.emplace_back("op", c.name);
      r.metrics.emplace_back("workers", static_cast<double>(workers));
      r.metrics.emplace_back("seconds", seconds);
      r.metrics.emplace_back("requests", static_cast<double>(requests));
      r.metrics.emplace_back("requests_per_s", rps);
      reporter.add_record(std::move(r));
    }
    if (rps_at_1 > 0 && rps_at_4 > 0) {
      const double speedup = rps_at_4 / rps_at_1;
      std::printf("  %-6s speedup at 4 workers: %.2fx\n", c.name, speedup);
      reporter.add_metric(std::string("speedup_4w_") + c.name, "speedup",
                          speedup);
    }

    // Closed-loop latency on an otherwise idle daemon: one request in
    // flight, samples recorded into the shared log2 histogram (a fresh
    // per-op instance of the same implementation backing the daemon's
    // server.request_ns), percentiles extracted from its buckets.
    {
      ServerConfig cfg;
      cfg.param_sets = {params};
      Server srv(cfg);
      const u64 tenant = srv.register_tenant(params, frames);
      abc::obs::Histogram latency_ns =
          abc::obs::registry().histogram("bench.latency_ns");
      for (std::size_t i = 0; i < latency_samples; ++i) {
        const u64 t0 = abc::obs::now_ns();
        const abc::ckks::ResponseFrame resp =
            srv.call(make_request(tenant, i, c.op, c.arg, upload));
        const u64 t1 = abc::obs::now_ns();
        if (resp.status != static_cast<u8>(Status::kOk)) {
          std::fprintf(stderr, "latency request failed: %s\n",
                       resp.error.c_str());
          return 1;
        }
        latency_ns.record(t1 - t0);
      }
      const abc::obs::HistogramValue hist = latency_ns.read();
      const double p50 = hist.quantile(0.50) * 1e-9;
      const double p99 = hist.quantile(0.99) * 1e-9;
      std::printf("  %-6s latency p50 %s  p99 %s  (histogram, %llu samples)\n",
                  c.name, abc::bench::fmt_time(p50).c_str(),
                  abc::bench::fmt_time(p99).c_str(),
                  static_cast<unsigned long long>(hist.count));
      abc::bench::BenchResult r;
      r.name = std::string("latency_") + c.name;
      r.labels.emplace_back("op", c.name);
      r.metrics.emplace_back("p50_seconds", p50);
      r.metrics.emplace_back("p99_seconds", p99);
      r.metrics.emplace_back("samples", static_cast<double>(hist.count));
      r.metrics.emplace_back("metrics_enabled",
                             abc::obs::kMetricsEnabled ? 1.0 : 0.0);
      reporter.add_record(std::move(r));
    }
  }

  // Pin the shared histogram layout into the JSON: every latency record
  // above (and every server scrape) buckets against these boundaries, so
  // runs are comparable across PRs as long as this record matches.
  {
    abc::bench::BenchResult r;
    r.name = "histogram_layout";
    r.metrics.emplace_back("buckets",
                           static_cast<double>(abc::obs::kHistBuckets));
    for (std::size_t i = 0; i < abc::obs::kHistBuckets; ++i) {
      char key[32];
      std::snprintf(key, sizeof key, "lower_%02zu", i);
      r.metrics.emplace_back(
          key, static_cast<double>(abc::obs::hist_bucket_lower(i)));
    }
    reporter.add_record(std::move(r));
  }

  if (!args.json_path.empty() && !reporter.write(args.json_path)) return 1;
  return 0;
}
