// Reproduces Fig. 5(a): execution time and speed-up of ABC-FHE for
// encoding+encryption and decoding+decryption against the CPU baseline
// and the prior accelerators [22]/[34].
//
// CPU: our single-threaded reference implementation at the bootstrappable
// parameters (substitute for Lattigo on i7-12700; see DESIGN.md).
// ABC-FHE: the cycle-level streaming simulator at the paper configuration.
// [34]/[22]: paper-ratio-derived analytic points (see prior_work.hpp).

#include <cstdio>

#include "baseline/cpu_reference.hpp"
#include "baseline/prior_work.hpp"
#include "common/table.hpp"
#include "core/simulator.hpp"

int main() {
  using namespace abc;
  std::puts("ABC-FHE reproduction :: Fig. 5a (latency & speed-up)\n");
  std::puts("Workload: N = 2^16; encode+encrypt at 24 limbs,");
  std::puts("decode+decrypt at 2 limbs; public-key profile on both sides.\n");

  // CPU baseline (measured).
  ckks::CkksParams params = ckks::CkksParams::bootstrappable();
  baseline::CpuClientPipeline cpu(params, ckks::EncryptMode::kPublicKey,
                                  params.num_limbs, 2);
  const baseline::CpuMeasurement m = cpu.measure(3);

  // ABC-FHE (simulated).
  core::ArchConfig cfg = core::ArchConfig::paper_default();
  cfg.enc_profile = core::EncryptProfile::public_key();
  core::AbcFheSimulator sim(cfg);
  const double abc_enc = sim.encode_encrypt_ms();
  const double abc_dec = sim.decode_decrypt_ms();

  // Prior accelerators (paper-ratio models).
  const auto sota = baseline::sota_client_accelerator(abc_enc, abc_dec);
  const auto aloha = baseline::aloha_he(abc_enc, abc_dec);

  TextTable enc("Encoding + Encryption");
  enc.set_header({"Platform", "Time (ms)", "Speed-up vs ABC-FHE",
                  "Paper speed-up"});
  enc.add_row({"CPU (1 thread, this host)", TextTable::fmt(m.encode_encrypt_ms, 3),
               TextTable::fmt(m.encode_encrypt_ms / abc_enc, 0) + "x",
               "1112x"});
  enc.add_row({aloha.name, TextTable::fmt(aloha.encode_encrypt_ms, 3),
               TextTable::fmt(aloha.encode_encrypt_ms / abc_enc, 0) + "x",
               "~214x (grouped SOTA)"});
  enc.add_row({sota.name, TextTable::fmt(sota.encode_encrypt_ms, 3),
               TextTable::fmt(sota.encode_encrypt_ms / abc_enc, 0) + "x",
               "214x"});
  enc.add_row({"ABC-FHE (this work, simulated)", TextTable::fmt(abc_enc, 3),
               "1x", "1x"});
  enc.print();
  std::puts("");

  TextTable dec("Decoding + Decryption");
  dec.set_header({"Platform", "Time (ms)", "Speed-up vs ABC-FHE",
                  "Paper speed-up"});
  dec.add_row({"CPU (1 thread, this host)", TextTable::fmt(m.decode_decrypt_ms, 3),
               TextTable::fmt(m.decode_decrypt_ms / abc_dec, 0) + "x",
               "963x"});
  dec.add_row({aloha.name, TextTable::fmt(aloha.decode_decrypt_ms, 3),
               TextTable::fmt(aloha.decode_decrypt_ms / abc_dec, 0) + "x",
               "~82x (grouped SOTA)"});
  dec.add_row({sota.name, TextTable::fmt(sota.decode_decrypt_ms, 3),
               TextTable::fmt(sota.decode_decrypt_ms / abc_dec, 0) + "x",
               "82x"});
  dec.add_row({"ABC-FHE (this work, simulated)", TextTable::fmt(abc_dec, 3),
               "1x", "1x"});
  dec.print();

  std::printf(
      "\nABC-FHE simulated: encode+encrypt %.3f ms, decode+decrypt %.3f ms "
      "(600 MHz, LPDDR5 68.4 GB/s).\n",
      abc_enc, abc_dec);
  std::puts("Speed-up shape check: enc speed-up > dec speed-up, both >> 1.");
  return 0;
}
