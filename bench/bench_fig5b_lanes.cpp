// Reproduces Fig. 5(b): effect of the number of lanes per pipelined NTT
// lane (P of the MDC backbone) on encode+encrypt execution time and
// sustained throughput. Under LPDDR5 bandwidth the benefit saturates
// around 8 lanes — the configuration ABC-FHE adopts.

#include <cstdio>

#include "common/table.hpp"
#include "core/simulator.hpp"

int main() {
  using namespace abc;
  std::puts("ABC-FHE reproduction :: Fig. 5b (lane sweep under LPDDR5)\n");

  TextTable table("Encode+encrypt vs lanes per PNL (N = 2^16, 24 limbs)");
  table.set_header({"Lanes (P)", "Exec time (ms)", "Throughput (ct/s)",
                    "DRAM throttle factor"});

  double prev_ms = 0;
  double ms_at_8 = 0, ms_at_64 = 0;
  for (int lanes : {1, 2, 4, 8, 16, 32, 64}) {
    core::ArchConfig cfg = core::ArchConfig::paper_default();
    cfg.enc_profile = core::EncryptProfile::public_key();
    cfg.lanes = lanes;
    cfg.mse_width = 4 * lanes;  // MSE sized to feed the PNL pool
    core::AbcFheSimulator sim(cfg);
    const auto one = sim.run(core::OperatingMode::kDualEncrypt, 1);
    const double throughput = sim.encode_encrypt_throughput();
    table.add_row({std::to_string(lanes), TextTable::fmt(one.latency_ms, 3),
                   TextTable::fmt(throughput, 0),
                   TextTable::fmt(one.sim.dram_throughput_factor, 3)});
    if (lanes == 8) ms_at_8 = one.latency_ms;
    if (lanes == 64) ms_at_64 = one.latency_ms;
    prev_ms = one.latency_ms;
  }
  (void)prev_ms;
  table.print();

  std::printf(
      "\nSaturation check: going from 8 to 64 lanes improves latency only "
      "%.2fx (memory bottleneck; paper caps the design at 8 lanes).\n",
      ms_at_8 / ms_at_64);
  return 0;
}
