#pragma once

/// @file bench_util.hpp
/// Minimal shared harness for the hand-rolled benches: best-of-reps wall
/// timing, a machine-readable JSON reporter (the BENCH_*.json perf
/// trajectory format), and flag parsing for the common options
///
///     --json <path>   write results as JSON to <path>
///     --reps <n>      timed repetitions per measurement (best-of)
///     --quick         minimal-reps smoke mode (CI)
///     --arch <name>   restrict kernel benches to one arch tier
///                     (portable | avx2 | avx512ifma)
///
/// JSON schema: {"bench": "<binary>", "results": [{"name": "...",
/// "seconds": ..., "items_per_s": ..., ...}, ...]} — one object per
/// measurement, metrics as flat numeric fields; records may also carry
/// string labels (e.g. "op"/"arch" in the unified kernel schema).

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <utility>
#include <vector>

namespace abc::bench {

struct BenchArgs {
  std::string json_path;                  // empty = no JSON output
  int reps = 0;                           // 0 = bench default
  bool quick = false;
  std::string arch;                       // empty = every selectable tier
  std::vector<std::string> positional;

  static BenchArgs parse(int argc, char** argv) {
    BenchArgs args;
    for (int i = 1; i < argc; ++i) {
      if (std::strcmp(argv[i], "--json") == 0 && i + 1 < argc) {
        args.json_path = argv[++i];
      } else if (std::strcmp(argv[i], "--reps") == 0 && i + 1 < argc) {
        args.reps = std::atoi(argv[++i]);
      } else if (std::strcmp(argv[i], "--quick") == 0) {
        args.quick = true;
      } else if (std::strcmp(argv[i], "--arch") == 0 && i + 1 < argc) {
        args.arch = argv[++i];
      } else {
        args.positional.emplace_back(argv[i]);
      }
    }
    return args;
  }
};

/// One measurement: a name plus string labels and flat numeric metrics.
struct BenchResult {
  std::string name;
  std::vector<std::pair<std::string, std::string>> labels;
  std::vector<std::pair<std::string, double>> metrics;
};

class JsonReporter {
 public:
  explicit JsonReporter(std::string bench_name)
      : bench_name_(std::move(bench_name)) {}

  /// Standard timing entry; derives items_per_s when items > 0.
  void add_timing(const std::string& name, double seconds, double items = 0) {
    BenchResult r{name, {}, {{"seconds", seconds}}};
    if (items > 0) {
      r.metrics.emplace_back("items", items);
      r.metrics.emplace_back("items_per_s", items / seconds);
    }
    results_.push_back(std::move(r));
  }

  /// Free-form scalar metric (speed-ups, rates, counts).
  void add_metric(const std::string& name, const std::string& key,
                  double value) {
    results_.push_back(BenchResult{name, {}, {{key, value}}});
  }

  /// Labeled record (the unified kernel schema: string labels like
  /// "op"/"arch"/"fused" next to numeric metrics like "ns_per_op").
  void add_record(BenchResult r) { results_.push_back(std::move(r)); }

  const std::vector<BenchResult>& results() const { return results_; }

  /// Writes the JSON file; returns false (with a message) on I/O failure.
  bool write(const std::string& path) const {
    std::FILE* f = std::fopen(path.c_str(), "w");
    if (f == nullptr) {
      std::fprintf(stderr, "bench: cannot open %s for writing\n",
                   path.c_str());
      return false;
    }
    std::fprintf(f, "{\n  \"bench\": \"%s\",\n  \"results\": [\n",
                 bench_name_.c_str());
    for (std::size_t i = 0; i < results_.size(); ++i) {
      const BenchResult& r = results_[i];
      std::fprintf(f, "    {\"name\": \"%s\"", r.name.c_str());
      for (const auto& [key, value] : r.labels) {
        std::fprintf(f, ", \"%s\": \"%s\"", key.c_str(), value.c_str());
      }
      for (const auto& [key, value] : r.metrics) {
        std::fprintf(f, ", \"%s\": %.9g", key.c_str(), value);
      }
      std::fprintf(f, "}%s\n", i + 1 < results_.size() ? "," : "");
    }
    std::fprintf(f, "  ]\n}\n");
    std::fclose(f);
    return true;
  }

 private:
  std::string bench_name_;
  std::vector<BenchResult> results_;
};

/// Calls fn() once to warm up, then returns the best wall time of @p reps
/// timed calls, in seconds.
template <class F>
double time_best_of(int reps, F&& fn) {
  fn();
  double best = 1e300;
  for (int r = 0; r < reps; ++r) {
    const auto t0 = std::chrono::steady_clock::now();
    fn();
    const auto t1 = std::chrono::steady_clock::now();
    best = std::min(best, std::chrono::duration<double>(t1 - t0).count());
  }
  return best;
}

/// Formats a seconds value with an adaptive unit for table output.
inline std::string fmt_time(double seconds) {
  char buf[32];
  if (seconds < 1e-6) {
    std::snprintf(buf, sizeof buf, "%.1f ns", seconds * 1e9);
  } else if (seconds < 1e-3) {
    std::snprintf(buf, sizeof buf, "%.2f us", seconds * 1e6);
  } else if (seconds < 1.0) {
    std::snprintf(buf, sizeof buf, "%.2f ms", seconds * 1e3);
  } else {
    std::snprintf(buf, sizeof buf, "%.2f s", seconds);
  }
  return buf;
}

}  // namespace abc::bench
