// Reproduces Fig. 3(c): effect of floating-point mantissa width on CKKS
// precision. The paper measures *bootstrapping precision* (Boot. prec.):
// the usable bits after server-side bootstrapping, whose CoeffToSlot /
// SlotToCoeff stages evaluate the encoding FFT homomorphically and
// amplify any FFT arithmetic error by roughly sqrt(N) (SHARP [19]).
//
// We measure the client-side quantities that determine it:
//   e_quant : encode rounding floor (full-precision transform),
//   e_fft(m): additional error attributable to an m-bit-mantissa FFT,
// and report Boot. prec. proxy = -log2(A * e_fft(m) + e_quant) with
// A = sqrt(N) * 2^3 the bootstrap transform amplification at N = 2^16.
// The raw round-trip precision is printed alongside. Substitution
// rationale: EXPERIMENTS.md E3.

#include <cmath>
#include <complex>
#include <cstdio>
#include <random>

#include "ckks/encoder.hpp"
#include "common/table.hpp"

int main() {
  using namespace abc;
  std::puts("ABC-FHE reproduction :: Fig. 3c (FP precision vs mantissa width)\n");

  ckks::CkksParams params = ckks::CkksParams::bootstrappable();
  auto ctx = ckks::CkksContext::create(params);
  ckks::CkksEncoder encoder(ctx);

  std::mt19937_64 rng(2025);
  std::uniform_real_distribution<double> dist(-1.0, 1.0);
  std::vector<std::complex<double>> message(encoder.slots());
  for (auto& z : message) z = {dist(rng), dist(rng)};

  // Full-precision reference: isolates the quantization floor.
  const ckks::Plaintext pt_exact = encoder.encode(message, /*limbs=*/2);
  const auto decoded_exact = encoder.decode(pt_exact);
  const double e_quant =
      ckks::compare_slots(message, decoded_exact).max_abs_error;

  // Bootstrap transform amplification (homomorphic CtS/StC, [19]).
  const double amplification =
      std::sqrt(static_cast<double>(ctx->n())) * 8.0;

  constexpr double kRequiredBits = 19.29;  // SHARP [19] requirement
  TextTable table("Precision vs FP mantissa width (N = 2^16)");
  table.set_header({"Mantissa bits", "Format", "Round-trip (bits)",
                    "Boot. prec. proxy (bits)", ">= 19.29"});

  double at43 = 0;
  int drop_off = -1;
  for (int mant : {25, 28, 31, 34, 37, 40, 43, 46, 49, 52}) {
    const ckks::Plaintext pt =
        encoder.encode_with_mantissa(message, /*limbs=*/2, mant);
    const auto decoded = encoder.decode_with_mantissa(pt, mant);
    const ckks::PrecisionReport r = ckks::compare_slots(message, decoded);
    // FFT-attributable error: reduced-mantissa result vs exact transform.
    double e_fft = 0.0;
    for (std::size_t i = 0; i < decoded.size(); ++i) {
      e_fft = std::max(e_fft, std::abs(decoded[i] - decoded_exact[i]));
    }
    const double boot_prec =
        -std::log2(amplification * e_fft + e_quant);
    if (mant == 43) at43 = boot_prec;
    if (drop_off < 0 && boot_prec >= kRequiredBits) drop_off = mant;
    const char* format = mant == 43 ? "FP55 (paper)"
                         : mant == 52 ? "FP64 (double)"
                                      : "";
    table.add_row({std::to_string(mant), format,
                   TextTable::fmt(r.precision_bits, 2),
                   TextTable::fmt(boot_prec, 2),
                   boot_prec >= kRequiredBits ? "yes" : "no"});
  }
  table.print();

  std::printf(
      "\nDrop-off point: the Boot. prec. proxy clears the 19.29-bit "
      "requirement from %d mantissa bits (paper: 43). At 43 bits we "
      "measure %.2f bits (paper: 23.39).\n",
      drop_off, at43);
  return 0;
}
