// Server-side key-switching throughput: wall time of relinearization,
// single slot rotations, and hoisted multi-rotation (one digit
// decomposition reused across all steps, ARK-style) under the
// ScalarBackend vs. ThreadPoolBackend at increasing worker counts.
//
// Key switching is the dominant server primitive (the BTS observation);
// the hoisted-vs-naive column quantifies how much of a rotation is the
// decomposition's digit NTTs — exactly the part ARK's key/digit reuse
// amortizes when many rotations share one input (rotate-and-sum trees,
// baby-step/giant-step matrix products).
//
// Usage: bench_keyswitch [log_n] [limbs] [rotations]
//                        [--json out.json] [--reps N] [--quick]
//   defaults: log_n=13, limbs=8, rotations=8. Ciphertexts sit one level
//   below the chain top (the last prime is the key-switch special
//   modulus). --quick drops to minimal reps for the CI smoke; --json
//   emits the bench_util.hpp schema.

#include <cstdio>
#include <cstdlib>
#include <memory>
#include <vector>

#include "backend/scalar_backend.hpp"
#include "backend/thread_pool_backend.hpp"
#include "bench_util.hpp"
#include "ckks/decryptor.hpp"
#include "ckks/encoder.hpp"
#include "ckks/encryptor.hpp"
#include "ckks/evaluator.hpp"
#include "common/table.hpp"

namespace {

using namespace abc;

struct SwitchTimes {
  double relin_s = 0.0;
  double rotate_s = 0.0;        // one rotation, decompose + accumulate
  double naive_multi_s = 0.0;   // `rotations` independent rotate() calls
  double hoisted_multi_s = 0.0; // rotate_many over the same steps
};

SwitchTimes measure(const ckks::CkksParams& params,
                    std::shared_ptr<backend::PolyBackend> backend,
                    const std::vector<int>& steps, int reps) {
  auto ctx = ckks::CkksContext::create(params, std::move(backend));
  ckks::CkksEncoder encoder(ctx);
  ckks::KeyGenerator keygen(ctx);
  const ckks::SecretKey sk = keygen.secret_key();
  ckks::Encryptor enc(ctx, keygen.public_key(sk));
  ckks::Evaluator eval(ctx);
  const ckks::RelinKey rlk = keygen.relin_key(sk);
  const ckks::GaloisKeys gks = keygen.galois_keys(sk, steps);

  // Work one level below the top: the last prime is the special modulus.
  const std::size_t level = ctx->max_limbs() - 1;
  std::vector<std::complex<double>> msg(encoder.slots(), {0.25, -0.125});
  const ckks::Ciphertext ct = enc.encrypt(encoder.encode(msg, level));
  const ckks::Ciphertext prod = eval.mul(ct, ct);

  ckks::KeySwitchScratch scratch;
  SwitchTimes t;
  t.relin_s = bench::time_best_of(reps, [&] {
    ckks::Ciphertext work = prod;
    eval.relinearize_inplace(work, rlk, &scratch);
  });
  t.rotate_s = bench::time_best_of(
      reps, [&] { (void)eval.rotate(ct, steps[0], gks, &scratch); });
  t.naive_multi_s = bench::time_best_of(reps, [&] {
    for (const int step : steps) (void)eval.rotate(ct, step, gks, &scratch);
  });
  t.hoisted_multi_s = bench::time_best_of(
      reps, [&] { (void)eval.rotate_many(ct, steps, gks, &scratch); });
  return t;
}

}  // namespace

int main(int argc, char** argv) {
  const bench::BenchArgs args = bench::BenchArgs::parse(argc, argv);
  auto positional = [&](std::size_t i, int def) {
    return i < args.positional.size() ? std::atoi(args.positional[i].c_str())
                                      : def;
  };
  const int log_n = positional(0, 13);
  const auto limbs = static_cast<std::size_t>(positional(1, 8));
  const int rotations = positional(2, 8);
  const int reps = args.reps > 0 ? args.reps : (args.quick ? 1 : 3);
  ABC_CHECK_ARG(rotations >= 1, "rotations must be >= 1");
  const auto nrot = static_cast<std::size_t>(rotations);

  std::vector<int> steps(nrot);
  for (std::size_t i = 0; i < nrot; ++i) steps[i] = static_cast<int>(i) + 1;

  std::puts("ABC-FHE reproduction :: server-side key switching\n");
  std::printf(
      "Workload: N = 2^%d, chain %zu limbs (ciphertexts at level %zu, last "
      "prime reserved); relin + rotations, %d-way hoisting.\n\n",
      log_n, limbs, limbs - 1, rotations);

  ckks::CkksParams params = ckks::CkksParams::sweep_point(log_n, limbs);
  params.validate();

  bench::JsonReporter rep("bench_keyswitch");
  rep.add_metric("meta/log_n", "value", log_n);
  rep.add_metric("meta/limbs", "value", static_cast<double>(limbs));
  rep.add_metric("meta/rotations", "value", rotations);

  TextTable table("Key-switch wall time (per operation)");
  table.set_header({"Backend", "Workers", "relin", "rotate",
                    "naive x" + std::to_string(rotations),
                    "hoisted x" + std::to_string(rotations), "hoist gain",
                    "speed-up"});

  const SwitchTimes scalar = measure(
      params, std::make_shared<backend::ScalarBackend>(), steps, reps);
  const auto add_rows = [&](const char* backend_name, const std::string& workers,
                            const SwitchTimes& t) {
    const std::string prefix =
        std::string("keyswitch/") + backend_name +
        (workers.empty() ? "" : "/" + workers);
    rep.add_timing(prefix + "/relin", t.relin_s);
    rep.add_timing(prefix + "/rotate", t.rotate_s);
    rep.add_timing(prefix + "/naive_multi", t.naive_multi_s,
                   static_cast<double>(rotations));
    rep.add_timing(prefix + "/hoisted_multi", t.hoisted_multi_s,
                   static_cast<double>(rotations));
    rep.add_metric(prefix + "/hoist_gain", "ratio",
                   t.naive_multi_s / t.hoisted_multi_s);
    table.add_row({backend_name, workers.empty() ? "1" : workers,
                   bench::fmt_time(t.relin_s), bench::fmt_time(t.rotate_s),
                   bench::fmt_time(t.naive_multi_s),
                   bench::fmt_time(t.hoisted_multi_s),
                   TextTable::fmt(t.naive_multi_s / t.hoisted_multi_s, 2) + "x",
                   TextTable::fmt(scalar.rotate_s / t.rotate_s, 2) + "x"});
  };
  add_rows("scalar", "", scalar);
  for (const std::size_t threads : {2u, 4u, 8u}) {
    add_rows("thread_pool", std::to_string(threads),
             measure(params, std::make_shared<backend::ThreadPoolBackend>(threads),
                     steps, reps));
  }
  table.print();

  if (!args.json_path.empty()) {
    if (!rep.write(args.json_path)) return 1;
    std::printf("\nJSON results written to %s\n", args.json_path.c_str());
  }
  return 0;
}
