// Ablation bench (DESIGN.md design-choice index): crosses the encryption
// dataflow profile (seed-compressed symmetric vs public-key), operand
// placement (on-chip generation vs DRAM), and RSC operating mode, showing
// how each paper design choice contributes to latency, throughput and
// DRAM traffic at bootstrappable parameters.

#include <cstdio>

#include "common/table.hpp"
#include "core/simulator.hpp"

int main() {
  using namespace abc;
  std::puts("ABC-FHE reproduction :: ablation (profiles x placement x mode)\n");

  TextTable table("Encode+encrypt ablation at N = 2^16, 24 limbs");
  table.set_header({"Profile", "TF", "PRNG", "Latency (ms)",
                    "Throughput (ct/s)", "DRAM rd (MB)", "DRAM wr (MB)"});

  const struct {
    const char* name;
    core::EncryptProfile profile;
  } profiles[] = {
      {"symmetric (seed c1)", core::EncryptProfile::symmetric_seeded()},
      {"public-key", core::EncryptProfile::public_key()},
  };
  const struct {
    bool tf;
    bool prng;
    const char* tf_label;
    const char* prng_label;
  } placements[] = {
      {true, true, "chip", "chip"},
      {true, false, "chip", "DRAM"},
      {false, false, "DRAM", "DRAM"},
  };
  for (const auto& p : profiles) {
    for (const auto& [tf, prng, tf_label, prng_label] : placements) {
      core::ArchConfig cfg = core::ArchConfig::paper_default();
      cfg.enc_profile = p.profile;
      cfg.placement.twiddles_on_chip = tf;
      cfg.placement.randomness_on_chip = prng;
      core::AbcFheSimulator sim(cfg);
      const auto one = sim.run(core::OperatingMode::kDualEncrypt, 1);
      const double tput = sim.encode_encrypt_throughput();
      table.add_row({p.name, tf_label, prng_label,
                     TextTable::fmt(one.latency_ms, 3),
                     TextTable::fmt(tput, 0),
                     TextTable::fmt(one.dram_read_mb, 1),
                     TextTable::fmt(one.dram_write_mb, 1)});
    }
  }
  table.print();

  // Operating-mode ablation: how the two RSCs are used (paper Sec. III).
  std::puts("");
  TextTable modes("Operating-mode ablation (batch of 8, public-key profile)");
  modes.set_header({"Mode", "Makespan (ms)", "Jobs/s"});
  core::ArchConfig cfg = core::ArchConfig::paper_default();
  cfg.enc_profile = core::EncryptProfile::public_key();
  core::AbcFheSimulator sim(cfg);
  for (auto [mode, name] :
       {std::pair{core::OperatingMode::kDualEncrypt, "dual-encrypt"},
        std::pair{core::OperatingMode::kDualDecrypt, "dual-decrypt"},
        std::pair{core::OperatingMode::kConcurrent, "concurrent enc+dec"}}) {
    const auto rep = sim.run(mode, 8);
    modes.add_row({name, TextTable::fmt(rep.latency_ms, 3),
                   TextTable::fmt(rep.throughput_per_s, 0)});
  }
  modes.print();

  std::puts(
      "\nReadings: seed compression halves write traffic and lifts "
      "throughput;\non-chip generation is worth ~4-5x latency; dual modes "
      "scale both job kinds.");
  return 0;
}
