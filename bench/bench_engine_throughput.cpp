// Batch encryption engine throughput: messages/second of the software
// client pipeline (encode + encrypt) under the ScalarBackend vs. the
// ThreadPoolBackend at increasing worker counts, against the modeled
// ABC-FHE accelerator rate (streaming simulator, dual-encrypt mode).
//
// This is the CPU-side complement of Fig. 5: it quantifies how far batch-
// and limb-level parallelism carry a general-purpose CPU before the
// accelerator's architectural advantage takes over.
//
// Usage: bench_engine_throughput [log_n] [limbs] [batch] [--json out.json]
//   defaults: log_n=13, limbs=8, batch=32 (keeps the run in seconds;
//   pass 16 24 for the paper's bootstrappable point). --json emits the
//   machine-readable rates (bench_util.hpp schema) for perf tracking.

#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <optional>
#include <random>
#include <string>
#include <thread>
#include <vector>

#include "backend/scalar_backend.hpp"
#include "backend/thread_pool_backend.hpp"
#include "bench_util.hpp"
#include "common/failpoint.hpp"
#include "common/table.hpp"
#include "core/simulator.hpp"
#include "engine/batch_encryptor.hpp"

namespace {

using namespace abc;

std::vector<std::vector<double>> random_messages(std::size_t batch,
                                                 std::size_t slots) {
  std::mt19937_64 rng(7);
  std::uniform_real_distribution<double> dist(-1.0, 1.0);
  std::vector<std::vector<double>> msgs(batch);
  for (auto& m : msgs) {
    m.resize(slots);
    for (double& x : m) x = dist(rng);
  }
  return msgs;
}

/// Encodes+encrypts the batch once for warm-up, then measures the best of
/// @p reps timed runs; returns messages/second.
double measure_throughput(const ckks::CkksParams& params,
                          std::shared_ptr<backend::PolyBackend> backend,
                          const std::vector<std::vector<double>>& msgs,
                          int reps) {
  auto ctx = ckks::CkksContext::create(params, std::move(backend));
  ckks::KeyGenerator keygen(ctx);
  engine::BatchEncryptor eng(ctx, keygen.public_key(keygen.secret_key()));

  (void)eng.encrypt_real_batch(msgs, params.num_limbs);  // warm-up
  double best_s = 1e300;
  for (int r = 0; r < reps; ++r) {
    const auto t0 = std::chrono::steady_clock::now();
    const auto cts = eng.encrypt_real_batch(msgs, params.num_limbs);
    const auto t1 = std::chrono::steady_clock::now();
    best_s = std::min(best_s, std::chrono::duration<double>(t1 - t0).count());
    if (cts.size() != msgs.size()) std::abort();
  }
  return static_cast<double>(msgs.size()) / best_s;
}

/// Report-mode (per-item-fault) throughput at an injected fault rate:
/// engine.encrypt_item is armed with a seeded per-hit probability, the
/// batch runs through the BatchErrorReport overload, and the rate counts
/// the whole batch (failed slots included — the engine still walks them).
/// @p failed_frac returns the failed fraction of the last timed run.
double measure_report_throughput(const ckks::CkksParams& params,
                                 std::size_t threads,
                                 const std::vector<std::vector<double>>& msgs,
                                 int reps, double fault_rate,
                                 double* failed_frac) {
  auto ctx = ckks::CkksContext::create(
      params, std::make_shared<backend::ThreadPoolBackend>(threads));
  ckks::KeyGenerator keygen(ctx);
  engine::BatchEncryptor eng(ctx, keygen.public_key(keygen.secret_key()));

  std::optional<fail::ScopedFailpoint> armed;
  if (fault_rate > 0.0) {
    fail::Policy policy;
    policy.trigger = fail::Trigger::kProbability;
    policy.probability = fault_rate;
    policy.seed = 17;
    armed.emplace(fail::points::kEncryptItem, policy);
  }

  engine::BatchErrorReport report;
  (void)eng.encrypt_real_batch(msgs, params.num_limbs, report);  // warm-up
  double best_s = 1e300;
  for (int r = 0; r < reps; ++r) {
    const auto t0 = std::chrono::steady_clock::now();
    const auto cts = eng.encrypt_real_batch(msgs, params.num_limbs, report);
    const auto t1 = std::chrono::steady_clock::now();
    best_s = std::min(best_s, std::chrono::duration<double>(t1 - t0).count());
    if (cts.size() != msgs.size()) std::abort();
  }
  *failed_frac =
      static_cast<double>(report.failed) / static_cast<double>(msgs.size());
  return static_cast<double>(msgs.size()) / best_s;
}

}  // namespace

int main(int argc, char** argv) {
  const bench::BenchArgs args = bench::BenchArgs::parse(argc, argv);
  auto positional = [&](std::size_t i, int def) {
    return i < args.positional.size() ? std::atoi(args.positional[i].c_str())
                                      : def;
  };
  const int log_n = positional(0, 13);
  const std::size_t limbs = static_cast<std::size_t>(positional(1, 8));
  const std::size_t batch = static_cast<std::size_t>(positional(2, 32));

  std::puts("ABC-FHE reproduction :: batch encryption engine throughput\n");
  std::printf("Workload: N = 2^%d, %zu limbs, batch of %zu messages, "
              "public-key profile, full slots.\n\n",
              log_n, limbs, batch);

  ckks::CkksParams params = ckks::CkksParams::sweep_point(log_n, limbs);
  params.validate();
  const auto msgs = random_messages(batch, params.slots());
  const int reps = args.reps > 0 ? args.reps : 3;

  bench::JsonReporter rep("bench_engine_throughput");
  rep.add_metric("meta/log_n", "value", log_n);
  rep.add_metric("meta/limbs", "value", static_cast<double>(limbs));
  rep.add_metric("meta/batch", "value", static_cast<double>(batch));

  const double scalar_rate = measure_throughput(
      params, std::make_shared<backend::ScalarBackend>(), msgs, reps);
  rep.add_metric("engine/scalar", "msgs_per_s", scalar_rate);

  TextTable table("Encode + encrypt throughput (messages/second)");
  table.set_header({"Backend", "Workers", "msgs/s", "Speed-up vs scalar"});
  table.add_row({"scalar", "1", TextTable::fmt(scalar_rate, 2), "1.00x"});

  double rate_at_4 = 0.0;
  for (std::size_t threads : {1u, 2u, 4u, 8u}) {
    const double rate = measure_throughput(
        params, std::make_shared<backend::ThreadPoolBackend>(threads), msgs,
        reps);
    if (threads == 4) rate_at_4 = rate;
    rep.add_metric("engine/thread_pool/" + std::to_string(threads),
                   "msgs_per_s", rate);
    table.add_row({"thread_pool", std::to_string(threads),
                   TextTable::fmt(rate, 2),
                   TextTable::fmt(rate / scalar_rate, 2) + "x"});
  }
  rep.add_metric("engine/thread_pool_4_speedup", "speedup",
                 rate_at_4 / scalar_rate);

  // Per-item-fault (report) mode under injected faults, 4 workers: the
  // fault-rate column. At 0% it doubles as the failure-isolation overhead
  // measurement — the target is parity with the throwing mode (the only
  // additions on the clean path are a per-item try block and one status
  // write), so the overhead should sit within run-to-run noise.
  TextTable fault_table(
      "Report mode under injected per-item faults (thread_pool, 4 workers)");
  fault_table.set_header(
      {"Fault rate", "msgs/s", "Failed/batch", "vs throwing @4"});
  double report_rate_at_0 = 0.0;
  for (const double rate : {0.0, 0.001, 0.01}) {
    double failed_frac = 0.0;
    const double msgs_per_s =
        measure_report_throughput(params, 4, msgs, reps, rate, &failed_frac);
    if (rate == 0.0) report_rate_at_0 = msgs_per_s;
    const std::string key =
        rate == 0.0 ? "0" : (rate == 0.001 ? "0.001" : "0.01");
    rep.add_metric("engine/fault_rate/" + key, "msgs_per_s", msgs_per_s);
    rep.add_metric("engine/fault_rate/" + key, "failed_frac", failed_frac);
    fault_table.add_row({TextTable::fmt(rate * 100.0, 1) + "%",
                         TextTable::fmt(msgs_per_s, 2),
                         TextTable::fmt(failed_frac * batch, 1),
                         TextTable::fmt(msgs_per_s / rate_at_4, 2) + "x"});
  }
  const double report_overhead = 1.0 - report_rate_at_0 / rate_at_4;
  rep.add_metric("engine/report_mode_overhead", "fraction", report_overhead);
  fault_table.print();
  std::printf("Report-mode overhead at 0%% faults: %.1f%% vs the throwing "
              "path (target: within noise).\n\n",
              report_overhead * 100.0);

  // Modeled accelerator at the same degree/limb configuration.
  core::ArchConfig cfg = core::ArchConfig::paper_default();
  cfg.log_n = log_n;
  cfg.fresh_limbs = limbs;
  cfg.enc_profile = core::EncryptProfile::public_key();
  const double abc_rate =
      core::AbcFheSimulator(cfg).encode_encrypt_throughput();
  rep.add_metric("engine/abc_fhe_modeled", "msgs_per_s", abc_rate);
  table.add_row({"ABC-FHE (modeled)", "-", TextTable::fmt(abc_rate, 2),
                 TextTable::fmt(abc_rate / scalar_rate, 2) + "x"});
  table.print();

  if (!args.json_path.empty()) {
    if (!rep.write(args.json_path)) return 1;
    std::printf("\nJSON results written to %s\n", args.json_path.c_str());
  }

  const unsigned cores = std::thread::hardware_concurrency();
  std::printf("\nThreadPoolBackend at 4 workers: %.2fx the scalar rate on a "
              "%u-core host (acceptance floor: 2x, needs >= 4 cores).\n",
              rate_at_4 / scalar_rate, cores);
  std::puts("The modeled accelerator rate bounds what any CPU backend can "
            "reach; the gap is the Fig. 5 story at batch scale.");
  if (cores < 4) {
    std::printf("Host has only %u core(s): parallel speed-up is bounded by "
                "the hardware, not the engine; threshold check skipped.\n",
                cores);
    return 0;
  }
  return rate_at_4 >= 2.0 * scalar_rate ? 0 : 1;
}
