// Reproduces Table I: area and pipeline depth of the three modular
// multiplier datapaths, plus the Sec. IV-A prime-selection claims (sparse
// QInv shift-add form; "443 primes of 32-36 bits at N=2^16").
// Also micro-benchmarks the functional software models.

#include <chrono>
#include <cstdio>
#include <random>

#include "common/table.hpp"
#include "core/hw_units.hpp"
#include "rns/modmul_algorithms.hpp"
#include "rns/ntt_prime.hpp"

namespace {

using namespace abc;

double time_ns_per_op(const rns::HwModMul& mm, u64 q) {
  std::mt19937_64 rng(7);
  std::vector<u64> a(4096), b(4096);
  for (std::size_t i = 0; i < a.size(); ++i) {
    a[i] = rng() % q;
    b[i] = rng() % q;
  }
  volatile u64 sink = 0;
  const auto t0 = std::chrono::steady_clock::now();
  constexpr int kReps = 50;
  for (int r = 0; r < kReps; ++r) {
    for (std::size_t i = 0; i < a.size(); ++i) sink += mm.mul(a[i], b[i]);
  }
  const auto t1 = std::chrono::steady_clock::now();
  (void)sink;
  return std::chrono::duration<double, std::nano>(t1 - t0).count() /
         (kReps * static_cast<double>(a.size()));
}

}  // namespace

int main() {
  std::puts("ABC-FHE reproduction :: Table I (modular multiplier area)\n");

  const u64 q = (u64{1} << 36) - (u64{1} << 18) + 1;
  const core::TechConstants tc = core::calibrate_28nm(q, 44);
  auto all = rns::make_all_modmuls(q, 44);

  TextTable table("Table I: Area of modular multiplier (28nm, 600MHz, 44-bit)");
  table.set_header({"Algorithm", "Area model (um^2)", "Paper (um^2)",
                    "Stages", "SW model (ns/op)"});
  const double paper_areas[] = {35054, 19255, 11328};
  int row = 0;
  for (const auto& mm : all) {
    table.add_row({mm->name(),
                   TextTable::fmt(core::modmul_area_um2(mm->cost(44), tc), 0),
                   TextTable::fmt(paper_areas[row], 0),
                   std::to_string(mm->pipeline_stages()),
                   TextTable::fmt(time_ns_per_op(*mm, q), 1)});
    ++row;
  }
  table.print();

  std::printf(
      "\nCalibrated 28nm logic constants: mult %.4f um^2/bit^2, "
      "shift-add %.4f um^2/bit, pipeline reg %.4f um^2/bit\n",
      tc.mult_um2_per_bit2, tc.shift_add_um2_per_bit, tc.reg_um2_per_bit);

  // Prime methodology (paper eq. 8 / eq. 11).
  rns::NttFriendlyMontgomeryHwModMul friendly(q, 44);
  std::printf(
      "\nReference prime q = 2^36 - 2^18 + 1: shift-add terms for Q: %d, "
      "for QInv (mod 2^44): %d -> no multiplier needed beyond a*b.\n",
      friendly.q_weight(), friendly.qinv_weight());

  TextTable primes("Hardware-friendly NTT primes at N = 2^16 (paper: 443 total for 32-36b)");
  primes.set_header({"Bit width", "NTT primes (q=1 mod 2N)",
                     "Sparse Q (eq. 8)", "Sparse Q and QInv (eq. 8 + 11)"});
  std::size_t total_all = 0, total_sparse = 0, total_friendly = 0;
  for (int bw = 32; bw <= 36; ++bw) {
    const auto every = rns::enumerate_ntt_primes(bw, 16);
    const auto sparse = rns::enumerate_sparse_ntt_primes(bw, 16, 3);
    const auto friendly = rns::enumerate_paper_friendly_primes(bw, 16);
    total_all += every.size();
    total_sparse += sparse.size();
    total_friendly += friendly.size();
    primes.add_row({std::to_string(bw), std::to_string(every.size()),
                    std::to_string(sparse.size()),
                    std::to_string(friendly.size())});
  }
  primes.add_row({"total (32-36)", std::to_string(total_all),
                  std::to_string(total_sparse),
                  std::to_string(total_friendly)});
  std::puts("");
  primes.print();
  std::printf(
      "\nPaper claims 443 usable primes; the full eq. 8 + eq. 11 criterion "
      "(sparse Q and <= 5-term QInv) finds %zu. See EXPERIMENTS.md E5.\n",
      total_friendly);
  return 0;
}
